"""The session pool: one warm ``CleaningSession`` per shard.

A *shard* is the unit of routing and of serialization: all requests with the
same ``(workload, cleaner, config-fingerprint)`` identity share one warm
:class:`~repro.session.session.CleaningSession` (and, for delta requests,
one long-lived :class:`~repro.streaming.cleaner.StreamingMLNClean` engine)
and execute serially on it, while distinct shards run concurrently.  The
fingerprint folds together :meth:`CleaningSession.fingerprint` (cleaner,
backend, rules, full config, stage order, window) with the request's
cleaner options and window spec, so two requests land on the same shard
exactly when a single warm session can serve both.

Routing is cheap by construction: it needs the workload's *rules* and
recommended config (both available from the generator without building any
table), never the data.  Table generation and error injection happen later,
on the worker thread, through :meth:`SessionPool.resolve_clean_inputs` —
with a per-pool instance cache so repeated requests against the same
workload profile reuse the generated instance instead of rebuilding it.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.constraints.parser import rules_to_strings
from repro.core.config import OBSERVABILITY_FIELDS, MLNCleanConfig
from repro.dataset.table import Table
from repro.detect.base import detector_specs_identity
from repro.errors.groundtruth import GroundTruth
from repro.service.codec import (
    CleanRequestSpec,
    DeltaRequestSpec,
    build_window,
    normalize_window_spec,
)
from repro.service.errors import BadRequestError, PoolExhaustedError
from repro.session.cleaners import get_cleaner
from repro.session.session import CleaningSession
from repro.streaming.cleaner import StreamingMLNClean
from repro.workloads.registry import get_workload_generator, recommended_config

#: shard-key workload label of inline (request-supplied) tables and rules
INLINE = "inline"


@dataclass(frozen=True)
class ShardKey:
    """The routing identity of a shard."""

    workload: str
    cleaner: str
    fingerprint: str

    @property
    def label(self) -> str:
        """Human-readable form used in job payloads and ``/stats``."""
        return f"{self.workload}:{self.cleaner}:{self.fingerprint[:10]}"


class Shard:
    """One warm session (plus, lazily, one streaming engine) and its counters."""

    def __init__(
        self,
        key: ShardKey,
        session: CleaningSession,
        window_spec: Optional[dict] = None,
    ):
        self.key = key
        self.session = session
        self.window_spec = window_spec
        #: the long-lived incremental engine of this shard's delta stream
        self.stream: Optional[StreamingMLNClean] = None
        self.created = time.monotonic()
        self.jobs_done = 0
        self.ticks = 0
        self.coalesced_requests = 0
        self.session_reuses = 0
        #: idempotency key → memoized result of its first application (None
        #: for keys re-registered from a WAL/snapshot replay, whose demuxed
        #: result is gone — retries then get a duplicate acknowledgement);
        #: bounded LRU so adversarial key churn cannot grow the shard
        self.applied_keys: "OrderedDict[str, Optional[dict]]" = OrderedDict()

    #: applied keys remembered per shard before the oldest are forgotten
    MAX_APPLIED_KEYS = 512

    def remember_key(self, key: str, result: Optional[dict]) -> None:
        """Memoize one applied request so its retries dedupe."""
        self.applied_keys[key] = result
        self.applied_keys.move_to_end(key)
        while len(self.applied_keys) > self.MAX_APPLIED_KEYS:
            self.applied_keys.popitem(last=False)

    def forget_key(self, key: str) -> None:
        """Un-register a key whose tick turned out not to be durable."""
        self.applied_keys.pop(key, None)

    def replayed_result(self, key: str) -> dict:
        """The dedupe answer for an already-applied key."""
        memo = self.applied_keys.get(key)
        if memo is not None:
            return memo
        # the key came back through recovery; its original demuxed result
        # did not survive the crash, but the state did — acknowledge that
        return {"kind": "deltas", "duplicate": True, "idempotency_key": key}

    def stream_engine(self, schema: list) -> StreamingMLNClean:
        """The shard's streaming engine, created on first delta tick."""
        if self.stream is None:
            self.stream = StreamingMLNClean(
                self.session.rules,
                schema=schema,
                config=self.session.config,
                window=build_window(self.window_spec),
                detectors=self.session.detectors,
            )
        return self.stream

    def stats(self) -> dict:
        uptime = max(time.monotonic() - self.created, 1e-9)
        return {
            "shard": self.key.label,
            "workload": self.key.workload,
            "cleaner": self.key.cleaner,
            "fingerprint": self.key.fingerprint,
            "jobs_done": self.jobs_done,
            "ticks": self.ticks,
            "coalesced_requests": self.coalesced_requests,
            "session_reuses": self.session_reuses,
            "stream_tuples": len(self.stream) if self.stream is not None else None,
            "throughput_jobs_per_s": round(self.jobs_done / uptime, 4),
        }


class SessionPool:
    """Routes request specs to shards, keeping one warm session per shard.

    All three containers are bounded, so a long-lived server cannot be
    grown without limit by varied (or adversarial) request shapes: shards
    hold live state and are *refused* beyond ``max_shards``
    (:class:`PoolExhaustedError` → 503), while the routing memo and the
    generated-instance cache are pure caches and evict FIFO.
    """

    def __init__(
        self,
        max_shards: int = 256,
        max_instances: int = 64,
        max_route_memo: int = 4096,
    ):
        if min(max_shards, max_instances, max_route_memo) < 1:
            raise ValueError("every SessionPool bound must be >= 1")
        self.max_shards = max_shards
        self.max_instances = max_instances
        self.max_route_memo = max_route_memo
        self._shards: dict = {}
        self._instances: "OrderedDict" = OrderedDict()
        #: request-identity string → ShardKey, so steady-state routing of a
        #: previously-seen request shape skips session construction entirely
        self._route_memo: "OrderedDict" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # routing (event-loop side: cheap, no table generation)
    # ------------------------------------------------------------------
    def route(self, spec: Union[CleanRequestSpec, DeltaRequestSpec]) -> Shard:
        """The shard serving ``spec`` (created warm on first sight).

        Raises ``KeyError`` with the registry's
        :func:`~repro.registry.unknown_name` listing for unknown workload /
        cleaner names — the front end maps that to a structured 400.
        """
        memo_key = _route_memo_key(spec)
        with self._lock:
            known = self._route_memo.get(memo_key)
            if known is not None:
                shard = self._shards[known]
                shard.session_reuses += 1
                return shard
        session = self._build_session(spec)
        window_spec = normalize_window_spec(getattr(spec, "window", None))
        fingerprint = _shard_fingerprint(session, spec, window_spec)
        key = ShardKey(
            workload=(spec.workload or INLINE).lower(),
            cleaner=spec.cleaner.lower(),
            fingerprint=fingerprint,
        )
        with self._lock:
            shard = self._shards.get(key)
            if shard is None:
                if len(self._shards) >= self.max_shards:
                    raise PoolExhaustedError(len(self._shards), self.max_shards)
                shard = Shard(key, session, window_spec=window_spec)
                self._shards[key] = shard
            else:
                shard.session_reuses += 1
            self._route_memo[memo_key] = key
            while len(self._route_memo) > self.max_route_memo:
                self._route_memo.popitem(last=False)
        return shard

    def _build_session(
        self, spec: Union[CleanRequestSpec, DeltaRequestSpec]
    ) -> CleaningSession:
        rules, config = self._rules_and_config(spec)
        options = getattr(spec, "options", {}) or {}
        try:
            cleaner = get_cleaner(spec.cleaner, **options)
        except (TypeError, ValueError) as exc:
            # an unknown or out-of-range factory option is the client's
            # mistake, not a server bug: surface it as a 400, not a 500
            raise BadRequestError(
                f"bad options for the {spec.cleaner!r} cleaner: {exc}"
            ) from exc
        return CleaningSession(
            rules=rules,
            config=config,
            cleaner=cleaner,
            stages=getattr(spec, "stages", None),
            detectors=getattr(spec, "detectors", None),
        )

    def _rules_and_config(
        self, spec: Union[CleanRequestSpec, DeltaRequestSpec]
    ) -> tuple:
        if spec.workload is not None:
            generator = get_workload_generator(
                spec.workload, tuples=spec.tuples, seed=spec.seed
            )
            rules = generator.rules()
            config = spec.config or recommended_config(spec.workload)
        else:
            rules = list(spec.rules or [])
            config = spec.config or MLNCleanConfig()
        if spec.config_overrides:
            config = replace(config, **spec.config_overrides)
        return rules, config

    # ------------------------------------------------------------------
    # data resolution (worker-thread side: may generate tables)
    # ------------------------------------------------------------------
    def resolve_clean_inputs(
        self, spec: CleanRequestSpec
    ) -> tuple[Table, Optional[GroundTruth]]:
        """The dirty table and ground truth one clean request runs on.

        Workload-based requests share generated instances through a
        per-profile cache, so twenty concurrent requests against the same
        (workload, size, error profile) corrupt the table once, not twenty
        times.
        """
        if spec.table is not None:
            return spec.table, spec.ground_truth
        key = (
            spec.workload.lower(),
            spec.tuples,
            spec.error_rate,
            spec.replacement_ratio,
            spec.seed,
            spec.error_seed,
        )
        with self._lock:
            instance = self._instances.get(key)
        if instance is None:
            from repro.experiments.harness import prepare_instance

            built = prepare_instance(
                spec.workload,
                tuples=spec.tuples,
                error_rate=spec.error_rate,
                replacement_ratio=spec.replacement_ratio,
                seed=spec.seed,
                error_seed=spec.error_seed,
            )
            with self._lock:
                instance = self._instances.setdefault(key, built)
                while len(self._instances) > self.max_instances:
                    self._instances.popitem(last=False)
        return instance.dirty, instance.ground_truth

    def schema_for(self, spec: DeltaRequestSpec) -> list:
        """The attribute schema of a delta shard's stream.

        Inline requests carry it; workload requests derive it from a
        one-tuple clean build (the schema does not depend on the size).
        """
        if spec.schema:
            return list(spec.schema)
        generator = get_workload_generator(spec.workload, tuples=1, seed=spec.seed)
        return generator.build().clean.attributes

    # ------------------------------------------------------------------
    # eviction (shard handoff)
    # ------------------------------------------------------------------
    def evict(self, key: ShardKey) -> bool:
        """Drop one shard and its routing memo entries (cluster handoff).

        The caller is responsible for having drained the shard first; the
        pool only forgets it, so the next request with this identity builds
        a fresh shard (possibly on another worker, recovered from its
        snapshot + WAL).
        """
        with self._lock:
            removed = self._shards.pop(key, None) is not None
            if removed:
                stale = [m for m, k in self._route_memo.items() if k == key]
                for memo_key in stale:
                    del self._route_memo[memo_key]
        return removed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def shards(self) -> list:
        with self._lock:
            return list(self._shards.values())

    def stats(self) -> list:
        return [shard.stats() for shard in self.shards()]


def _route_memo_key(spec: Union[CleanRequestSpec, DeltaRequestSpec]) -> str:
    """The request fields that determine which shard serves it.

    Everything :meth:`SessionPool._build_session` consumes *except* size and
    seed: a registered workload's rule set is declared on its generator
    class, so it does not depend on either — which is what makes
    memoization sound without building anything.
    """
    payload = {
        "workload": spec.workload.lower() if spec.workload else None,
        "cleaner": spec.cleaner.lower(),
        "options": getattr(spec, "options", {}) or {},
        # observability-only knobs (config.trace) are output-invariant, so
        # requests differing only there share a shard (and its warm caches)
        "config_overrides": {
            key: value
            for key, value in (spec.config_overrides or {}).items()
            if key not in OBSERVABILITY_FIELDS
        },
        "config": spec.config.identity_dict() if spec.config is not None else None,
        "stages": getattr(spec, "stages", None),
        "detectors": detector_specs_identity(getattr(spec, "detectors", None)),
        "window": normalize_window_spec(getattr(spec, "window", None)),
        "rules": (
            rules_to_strings(spec.rules)
            if spec.workload is None and spec.rules
            else None
        ),
        # an inline stream's schema shapes its engine, so two streams with
        # the same rules but different schemas must not share a shard
        "schema": list(getattr(spec, "schema", None) or []) or None,
    }
    return json.dumps(payload, sort_keys=True, default=str)


def _shard_fingerprint(
    session: CleaningSession,
    spec: Union[CleanRequestSpec, DeltaRequestSpec],
    window_spec: Optional[dict],
) -> str:
    """Session fingerprint + request-only identity (options, window, schema)."""
    payload = {
        "session": session.fingerprint(),
        "options": getattr(spec, "options", {}) or {},
        "window": window_spec,
        "schema": list(getattr(spec, "schema", None) or []) or None,
    }
    # default=str tolerates non-JSON option values from in-process callers
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
