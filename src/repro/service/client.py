"""A small blocking client for the cleaning service (stdlib ``http.client``).

The helper the examples, tests and the CI smoke driver use::

    from repro.service.client import ServiceClient

    client = ServiceClient(port=8735)
    job = client.clean(workload="hospital-sample", tuples=48, error_rate=0.1)
    report_json = job["result"]["report"]          # a CleaningReport JSON dict
    print(client.stats()["latency"])

Each call opens its own connection (the server speaks one request per
connection), so one client instance is safe to share across threads — which
is exactly how the smoke driver fires its concurrent requests.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Optional


class ServiceError(RuntimeError):
    """A non-2xx response, with the server's structured JSON attached."""

    def __init__(self, status: int, payload: dict):
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        message = error.get("message") or json.dumps(payload)[:500]
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Blocking JSON client for one service endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 600.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        """One HTTP exchange; raises :class:`ServiceError` on non-2xx."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
            if response.status >= 400:
                raise ServiceError(response.status, decoded)
            return decoded
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def clean(self, *, wait: bool = True, timeout: Optional[float] = None, **fields) -> dict:
        """``POST /clean``; returns the job object from the response.

        Keyword fields mirror the wire format: ``workload``/``tuples``/
        ``error_rate``/... or ``table``+``rules``, plus ``cleaner``,
        ``options``, ``config`` (override mapping) and ``include_report``.
        With ``wait=True`` (default) the returned job carries ``result``.
        """
        payload = {**fields, "wait": wait}
        if timeout is not None:
            payload["timeout"] = timeout
        return self.request("POST", "/clean", payload)["job"]

    def deltas(self, deltas: list, *, wait: bool = True, timeout: Optional[float] = None, **fields) -> dict:
        """``POST /deltas``; ``deltas`` is a list of op-tagged dicts."""
        payload = {**fields, "deltas": deltas, "wait": wait}
        if timeout is not None:
            payload["timeout"] = timeout
        return self.request("POST", "/deltas", payload)["job"]

    def job(self, job_id: str) -> dict:
        return self.request("GET", f"/jobs/{job_id}")["job"]

    def wait_for(self, job_id: str, timeout: float = 300.0, poll: float = 0.1) -> dict:
        """Poll ``GET /jobs/<id>`` until the job finishes (done or failed)."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in ("done", "failed"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {job['status']} after {timeout}s")
            time.sleep(poll)

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def wait_until_healthy(self, timeout: float = 30.0, poll: float = 0.2) -> dict:
        """Block until ``/healthz`` answers (server boot synchronisation)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (ConnectionError, OSError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)
