"""A small blocking client for the cleaning service (stdlib ``http.client``).

The helper the examples, tests and the CI smoke driver use::

    from repro.service.client import ServiceClient

    client = ServiceClient(port=8735)
    job = client.clean(workload="hospital-sample", tuples=48, error_rate=0.1)
    report_json = job["result"]["report"]          # a CleaningReport JSON dict
    print(client.stats()["latency"])

Each call opens its own connection (the server speaks one request per
connection), so one client instance is safe to share across threads — which
is exactly how the smoke driver fires its concurrent requests.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import uuid
from typing import Callable, Optional


def _parse_retry_after(raw: Optional[str]) -> Optional[float]:
    """A ``Retry-After`` header's value in seconds, or None.

    Servers (and middleboxes) emit all sorts of garbage here — empty
    strings, HTTP-dates, negative numbers.  A malformed or negative hint
    must never crash the client's error path; it is simply treated as
    absent and the normal backoff schedule applies.
    """
    if not raw:
        return None
    try:
        value = float(raw)
    except (TypeError, ValueError):
        return None
    return value if value >= 0 else None


class ServiceError(RuntimeError):
    """A non-2xx response, with the server's structured JSON attached."""

    def __init__(
        self, status: int, payload: dict, retry_after: Optional[float] = None
    ):
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        message = error.get("message") or json.dumps(payload)[:500]
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        #: the server's ``Retry-After`` hint in seconds (503 responses)
        self.retry_after = retry_after


class ServiceClient:
    """Blocking JSON client for one service endpoint.

    ``retries`` (opt-in, default 0) makes the client ride out transient
    unavailability: 503 responses (overload, draining, a cluster rebalance
    in flight) and connection failures (a worker restarting after a crash)
    are retried with bounded exponential backoff — ``backoff * 2**attempt``
    capped at ``max_backoff``, floored at the server's ``Retry-After`` hint
    when one was sent, plus up to ``jitter`` fractional randomization so a
    herd of clients does not retry in lockstep.  400s and genuine 500s are
    never retried.  ``sleep`` and ``rng`` are injectable for deterministic
    tests (a fake clock asserts the exact schedule).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 600.0,
        retries: int = 0,
        backoff: float = 0.25,
        max_backoff: float = 8.0,
        jitter: float = 0.2,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.jitter = jitter
        self._sleep = sleep
        self._rng = rng or random.Random()

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        deadline: Optional[float] = None,
    ) -> dict:
        """One HTTP exchange; raises :class:`ServiceError` on non-2xx.

        With ``retries`` configured, 503s and connection errors are retried
        on the backoff schedule documented on the class; the final attempt's
        error propagates unchanged.  ``deadline`` is an end-to-end budget in
        seconds for the *whole* call, retries included: each attempt sends
        the remaining budget as ``X-Repro-Deadline`` (the router and worker
        subtract their own elapsed time from it), and once it is spent the
        client raises a local 504 instead of retrying further.
        """
        started = time.monotonic() if deadline is not None else 0.0
        for attempt in range(self.retries + 1):
            remaining = None
            if deadline is not None:
                remaining = deadline - (time.monotonic() - started)
                if remaining <= 0:
                    raise ServiceError(
                        504,
                        {
                            "error": {
                                "type": "deadline_exceeded",
                                "message": f"deadline of {deadline:g}s spent "
                                           f"after {attempt} attempt(s)",
                            }
                        },
                    )
            try:
                # the kwarg is only passed when a budget is set: tests (and
                # callers) substituting _request_once with the historical
                # (method, path, payload) signature keep working
                if remaining is not None:
                    return self._request_once(
                        method, path, payload, deadline=remaining
                    )
                return self._request_once(method, path, payload)
            except ServiceError as exc:
                if exc.status != 503 or attempt >= self.retries:
                    raise
                self._sleep(self.retry_delay(attempt, exc.retry_after))
            except ConnectionError:
                if attempt >= self.retries:
                    raise
                self._sleep(self.retry_delay(attempt, None))
        raise AssertionError("unreachable")  # pragma: no cover

    def retry_delay(self, attempt: int, retry_after: Optional[float]) -> float:
        """The backoff before retry number ``attempt + 1`` (0-based)."""
        delay = min(self.max_backoff, self.backoff * (2**attempt))
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        if self.jitter:
            delay *= 1.0 + self._rng.random() * self.jitter
        return delay

    def _request_once(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        deadline: Optional[float] = None,
    ) -> dict:
        timeout = self.timeout
        if deadline is not None:
            timeout = min(timeout, max(deadline, 0.001))
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            if deadline is not None:
                headers["X-Repro-Deadline"] = f"{deadline:.6f}"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
            if response.status >= 400:
                raise ServiceError(
                    response.status,
                    decoded,
                    retry_after=_parse_retry_after(
                        response.getheader("Retry-After")
                    ),
                )
            return decoded
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def clean(
        self,
        *,
        wait: bool = True,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        **fields,
    ) -> dict:
        """``POST /clean``; returns the job object from the response.

        Keyword fields mirror the wire format: ``workload``/``tuples``/
        ``error_rate``/... or ``table``+``rules``, plus ``cleaner``,
        ``options``, ``config`` (override mapping) and ``include_report``.
        With ``wait=True`` (default) the returned job carries ``result``.
        ``deadline`` bounds the whole call, retries included (see
        :meth:`request`).
        """
        payload = {**fields, "wait": wait}
        if timeout is not None:
            payload["timeout"] = timeout
        return self.request("POST", "/clean", payload, deadline=deadline)["job"]

    def deltas(
        self,
        deltas: list,
        *,
        wait: bool = True,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        idempotency_key: Optional[str] = None,
        **fields,
    ) -> dict:
        """``POST /deltas``; ``deltas`` is a list of op-tagged dicts.

        ``idempotency_key`` makes at-least-once retries exactly-once: the
        shard remembers applied keys (durably, in its WAL/snapshots), so a
        batch re-sent after a lost acknowledgement is deduplicated instead
        of applied twice.  When the client is configured with ``retries``
        and no key is given, one is generated — the payload is built once,
        so every retry of this call re-sends the *same* key.
        """
        if idempotency_key is None and self.retries > 0:
            idempotency_key = uuid.uuid4().hex
        payload = {**fields, "deltas": deltas, "wait": wait}
        if idempotency_key is not None:
            payload["idempotency_key"] = idempotency_key
        if timeout is not None:
            payload["timeout"] = timeout
        return self.request("POST", "/deltas", payload, deadline=deadline)["job"]

    def job(self, job_id: str) -> dict:
        return self.request("GET", f"/jobs/{job_id}")["job"]

    def wait_for(self, job_id: str, timeout: float = 300.0, poll: float = 0.1) -> dict:
        """Poll ``GET /jobs/<id>`` until the job finishes (done or failed)."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in ("done", "failed"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {job['status']} after {timeout}s")
            time.sleep(poll)

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def wait_until_healthy(self, timeout: float = 30.0, poll: float = 0.2) -> dict:
        """Block until ``/healthz`` answers (server boot synchronisation)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (ConnectionError, OSError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)
