"""``repro.service`` — a concurrent, sharded cleaning service.

The library's entry points up to here are single blocking calls; this
sub-package turns them into something that can take traffic::

    front end (HTTP, stdlib)  →  bounded asyncio job queue
                              →  SessionPool: one warm CleaningSession per
                                 (workload, cleaner, config-fingerprint) shard
                              →  per-shard worker: clean jobs run serially on
                                 the warm session; queued delta jobs coalesce
                                 into one StreamingMLNClean micro-batch tick

Module map:

* :mod:`repro.service.codec`     — wire format: request specs, JSON codecs,
  deterministic report signatures,
* :mod:`repro.service.jobs`      — jobs, statuses, the bounded job store,
* :mod:`repro.service.pool`      — shard keys and the warm session pool,
* :mod:`repro.service.coalescer` — micro-batch folding + demultiplexing,
* :mod:`repro.service.service`   — the asyncio control plane,
* :mod:`repro.service.http`      — the stdlib HTTP front end
  (``python -m repro.service serve``),
* :mod:`repro.service.client`    — the blocking client helper,
* :mod:`repro.service.cleaner`   — the ``"service"`` registered cleaner
  (routes a normal session run through the service; the
  ``service_replay`` experiment asserts it changes nothing).

The headline invariant, asserted by ``tests/test_service.py`` on all four
registered workloads: N requests submitted concurrently produce byte-
identical cleaning output (tables, stage counts, dedup, accuracy — every
non-wall-clock byte of ``CleaningReport.to_json_dict()``) to the same N
requests run serially through standalone sessions.
"""

from repro.service.cleaner import ServiceCleaner
from repro.service.client import ServiceClient, ServiceError
from repro.service.codec import (
    CleanRequestSpec,
    DeltaRequestSpec,
    decode_clean_request,
    decode_delta_request,
    report_signature,
    report_signature_dict,
)
from repro.service.coalescer import TickPlan, plan_tick
from repro.service.errors import (
    BadRequestError,
    PoolExhaustedError,
    ServiceOverloadedError,
)
from repro.service.http import ServiceHTTPServer, ServiceServer, serve
from repro.service.jobs import Job, JobStatus, JobStore
from repro.service.pool import SessionPool, Shard, ShardKey
from repro.service.service import CleaningService, ServiceConfig

__all__ = [
    "BadRequestError",
    "CleanRequestSpec",
    "CleaningService",
    "DeltaRequestSpec",
    "Job",
    "JobStatus",
    "JobStore",
    "PoolExhaustedError",
    "ServiceCleaner",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceOverloadedError",
    "ServiceServer",
    "SessionPool",
    "Shard",
    "ShardKey",
    "TickPlan",
    "decode_clean_request",
    "decode_delta_request",
    "plan_tick",
    "report_signature",
    "report_signature_dict",
    "serve",
]
