"""The cleaning service core: bounded queue, shard workers, coalesced ticks.

``CleaningService`` is the engine behind the HTTP front end (and usable
in-process without it): an asyncio control plane that accepts decoded
request specs, routes them through the :class:`~repro.service.pool.SessionPool`
to per-shard queues, and executes the actual cleaning on a thread pool so
the event loop stays responsive while CPU-bound work runs.

Concurrency model, in one paragraph: submission is bounded (``max_pending``
jobs queued-or-running; beyond that :class:`ServiceOverloadedError` — the
front end's 503).  Every shard has one worker task, so jobs of one shard are
*serialized* against its warm session and stream engine, while distinct
shards clean concurrently on the executor.  When a shard worker wakes up it
drains everything queued for its shard: delta requests are folded into one
:class:`~repro.streaming.cleaner.StreamingMLNClean` micro-batch via
:func:`~repro.service.coalescer.plan_tick` (one engine tick per drain —
natural micro-batching under load), clean requests run one by one in
arrival order.  Per-job latency lands in a
:class:`~repro.perf.LatencyWindow`; ``stats()`` surfaces it next to queue
depth, per-shard throughput and the process-global
:func:`~repro.perf.global_distance_stats` cache counters.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import logging
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Callable, Optional, Union

from repro.core.report import table_to_json_dict
from repro.faults import INJECTOR
from repro.obs import (
    REGISTRY,
    MetricsRegistry,
    Span,
    Tracer,
    span,
    to_chrome,
    use_tracer,
)
from repro.perf import LatencyWindow, global_distance_stats
from repro.service.coalescer import plan_tick
from repro.service.codec import (
    CleanRequestSpec,
    DeltaRequestSpec,
    report_signature,
)
from repro.service.errors import (
    ServiceDrainingError,
    ServiceOverloadedError,
    ShardDegradedError,
)
from repro.service.jobs import Job, JobStore
from repro.service.pool import SessionPool, Shard

#: what a request spec may be
RequestSpec = Union[CleanRequestSpec, DeltaRequestSpec]

log = logging.getLogger("repro.service")


class DurabilityError(RuntimeError):
    """A durability hook could not make an applied tick durable.

    Raised by ``log_tick`` implementations when the WAL write/fsync fails:
    the tick's in-memory effect must NOT be acknowledged (nothing
    unacknowledged may survive a crash, and nothing acknowledged may be
    lost).  The service responds by discarding the shard's in-memory stream
    — the durable state on disk is the only truth — and failing the folded
    jobs with ``error_kind="unavailable"`` so clients retry.
    """


@dataclass
class ServiceConfig:
    """Operational knobs of one service instance."""

    #: bounded backpressure: jobs queued-or-running before submits are shed
    max_pending: int = 64
    #: distinct warm shards before shard-creating submits are shed
    max_shards: int = 256
    #: threads executing the CPU-bound cleaning work
    executor_workers: int = 4
    #: samples retained for the p50/p95 latency readout
    latency_window: int = 512
    #: finished jobs kept addressable via ``GET /jobs/<id>``
    retain_finished_jobs: int = 2048
    #: server-side default for requests that omit their own ``seed``
    #: (the ``--seed`` flag of ``python -m repro.service serve``)
    default_seed: Optional[int] = None
    #: trace every job (in memory; read back via ``CleaningService.tracer``)
    trace: bool = False
    #: directory receiving one Chrome ``trace_event`` JSON per finished job
    #: (the ``--trace-dir`` flag of ``python -m repro.service serve``);
    #: setting it implies ``trace``
    trace_dir: Optional[str] = None
    #: times one idempotency-keyed request may crash its shard's apply path
    #: before it is quarantined (further attempts fail fast instead of
    #: repeatedly taking the shard down)
    poison_threshold: int = 3

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError("the service needs max_pending >= 1")
        if self.executor_workers < 1:
            raise ValueError("the service needs executor_workers >= 1")
        if self.poison_threshold < 1:
            raise ValueError("the service needs poison_threshold >= 1")


class _ShardRuntime:
    """A shard's queue and worker task (event-loop-side bookkeeping)."""

    def __init__(self, shard: Shard):
        self.shard = shard
        self.queue: asyncio.Queue = asyncio.Queue()
        self.task: Optional[asyncio.Task] = None
        #: jobs dequeued by the worker and not yet finalized (the queue
        #: alone cannot tell "idle" from "mid-tick"; shard handoff needs to)
        self.inflight = 0


class CleaningService:
    """The concurrent, sharded cleaning service (see the module docstring)."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.pool = SessionPool(max_shards=self.config.max_shards)
        self.jobs = JobStore(retain_finished=self.config.retain_finished_jobs)
        self.latency = LatencyWindow(self.config.latency_window)
        self._runtimes: dict = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pending = 0
        self._started_at: Optional[float] = None
        self._running = False
        self._draining = False
        #: optional durability hooks (duck-typed; the cluster's
        #: :class:`repro.cluster.ShardDurability` is the one implementation):
        #: ``attach(shard, engine, spec)`` right after a shard's streaming
        #: engine is created (recovery replays into it there),
        #: ``log_tick(shard, batch, report)`` after a successful apply and
        #: *before* the jobs are acknowledged, ``checkpoint(shard)`` on
        #: drain/handoff.  None = the single-process service, no durability.
        self.durability = None
        #: poison-job tracking (event-loop-side, bounded): crash counts per
        #: poison key, and keys parked after ``poison_threshold`` crashes
        self._poison_counts: "OrderedDict[str, int]" = OrderedDict()
        self._quarantined: "OrderedDict[str, str]" = OrderedDict()
        #: service-scoped instruments (one registry per instance, so two
        #: services in one process do not mix their job counters); the
        #: process-wide :data:`repro.obs.REGISTRY` is appended at scrape time
        self.metrics = MetricsRegistry()
        self._jobs_total = self.metrics.counter(
            "repro_service_jobs_total",
            "finished service jobs by kind and terminal status",
            ("kind", "status"),
        )
        self._job_seconds = self.metrics.histogram(
            "repro_service_job_seconds",
            "submit-to-finish latency of finished jobs, per shard",
            ("shard",),
        )
        self._batch_sizes = self.metrics.histogram(
            "repro_service_coalesced_batch_size",
            "delta requests folded into one engine tick",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        self.metrics.register_collector(self._runtime_families)
        #: the per-service tracer (None when tracing is off)
        self.tracer: Optional[Tracer] = (
            Tracer() if (self.config.trace or self.config.trace_dir) else None
        )
        #: job id → open root span of that job's trace
        self._job_spans: "dict[str, Span]" = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "CleaningService":
        if self._running:
            return self
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="repro-service",
        )
        self._started_at = time.monotonic()
        self._running = True
        return self

    async def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        for runtime in self._runtimes.values():
            if runtime.task is not None:
                runtime.task.cancel()
        tasks = [r.task for r in self._runtimes.values() if r.task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for runtime in self._runtimes.values():
            while not runtime.queue.empty():
                runtime.queue.get_nowait()
        # Fail every job that never reached done/failed — queued jobs the
        # drain above orphaned AND jobs a cancelled worker had in flight
        # (cancellation hits the worker's `await run_in_executor`, which the
        # job-isolation `except Exception` deliberately does not catch) —
        # so wait()-ers wake up instead of hanging until their timeout.
        for job in self.jobs.unfinished():
            job.fail("service stopped before the job finished")
        if self.tracer is not None:
            # close the root spans of jobs the shutdown orphaned so the
            # tracer holds no forever-open spans across restarts
            for root in self._job_spans.values():
                self.tracer.end(root)
            self._job_spans.clear()
        self._pending = 0
        # worker tasks are dead; a later start() must not route onto them
        self._runtimes.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def drain(self, timeout: Optional[float] = 30.0) -> None:
        """Graceful quiesce: refuse new work, finish queued jobs, checkpoint.

        After this returns every queued job has finished (or ``timeout``
        expired), and — when a durability layer is attached — every live
        streaming shard has flushed its WAL and written a final snapshot.
        Drain is one-way: the service stays started but keeps refusing new
        submissions; call :meth:`stop` afterwards to tear it down.
        """
        if not self._running:
            return
        self._draining = True
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._pending > 0:
            if deadline is not None and time.monotonic() >= deadline:
                break
            await asyncio.sleep(0.02)
        if self.durability is not None:
            loop = asyncio.get_running_loop()
            for runtime in list(self._runtimes.values()):
                if runtime.shard.stream is not None:
                    await loop.run_in_executor(
                        self._executor,
                        partial(self.durability.checkpoint, runtime.shard),
                    )

    async def release_shard(self, fingerprint: str) -> bool:
        """Drain one shard and evict it (the cluster's handoff primitive).

        Waits until the shard's queue is empty and no job of it is in
        flight, checkpoints its state (WAL flush + final snapshot when a
        durability layer is attached), cancels its worker task and drops it
        from the pool.  The next request routed here rebuilds the shard
        from scratch — on another worker, recovery rebuilds it from the
        shared snapshot + WAL.  Returns False when no such shard is live.
        """
        runtime = None
        for candidate in self._runtimes.values():
            if candidate.shard.key.fingerprint == fingerprint:
                runtime = candidate
                break
        if runtime is None:
            return False
        while not runtime.queue.empty() or runtime.inflight:
            await asyncio.sleep(0.02)
        if runtime.task is not None:
            runtime.task.cancel()
            try:
                await runtime.task
            except asyncio.CancelledError:
                pass
        if self.durability is not None and runtime.shard.stream is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                self._executor, partial(self.durability.checkpoint, runtime.shard)
            )
        if self.durability is not None:
            self.durability.detach(runtime.shard)
        self._runtimes.pop(runtime.shard.key, None)
        self.pool.evict(runtime.shard.key)
        return True

    async def __aenter__(self) -> "CleaningService":
        return await self.start()

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    @property
    def pending(self) -> int:
        """Jobs currently queued or running."""
        return self._pending

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def submit(
        self,
        spec: RequestSpec,
        request_id: Optional[str] = None,
        budget: Optional[float] = None,
    ) -> Job:
        """Route and enqueue one request; returns its :class:`Job` handle.

        Raises :class:`ServiceOverloadedError` when the bounded queue is
        full, :class:`ServiceDrainingError` while a graceful shutdown or
        shard handoff is in progress, and ``KeyError`` (with the registry
        name listing) for unknown workload / cleaner names — all *before*
        anything is enqueued.  ``request_id`` is an optional caller-supplied
        correlation id (the cluster router's ``X-Repro-Request-Id``); it is
        attached to the job and its root span so one request's spans can be
        stitched across the router and worker processes.  ``budget`` is the
        request's remaining deadline in seconds (``X-Repro-Deadline``): work
        still queued when it expires is failed with ``error_kind="deadline"``
        instead of executing for a caller that already gave up.
        """
        if not self._running:
            raise RuntimeError("the service is not running; call start() first")
        if self._draining:
            raise ServiceDrainingError()
        spec.validate()
        if self._pending >= self.config.max_pending:
            raise ServiceOverloadedError(self._pending, self.config.max_pending)
        shard = self.pool.route(spec)
        runtime = self._runtime_for(shard)
        kind = "clean" if isinstance(spec, CleanRequestSpec) else "deltas"
        job = self.jobs.create(kind=kind, shard=shard.key.label)
        job.request_id = request_id
        if budget is not None:
            job.deadline = time.monotonic() + budget
        if self.tracer is not None:
            # the job's root span: opened at enqueue, closed at finalize, so
            # the exported tree covers queueing, dispatch and execution
            root = self.tracer.begin(
                "service.request",
                parent=None,
                job=job.id,
                kind=kind,
                shard=shard.key.label,
            )
            if request_id is not None:
                root.set(request_id=request_id)
            self._job_spans[job.id] = root
        self._pending += 1
        runtime.queue.put_nowait((job, spec))
        return job

    async def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job finishes (done or failed); returns it."""
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        await asyncio.wait_for(job.done_event.wait(), timeout)
        return job

    def job(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        uptime = time.monotonic() - self._started_at if self._started_at else 0.0
        if not self._running:
            status = "stopped"
        elif self._draining:
            status = "draining"
        else:
            status = "ok"
        return {
            "status": status,
            "uptime_s": round(uptime, 3),
            "pending": self._pending,
            "shards": len(self.pool.shards()),
        }

    def stats(self) -> dict:
        """The ``GET /stats`` payload: queue, latency, shards, cache counters."""
        shard_stats = self.pool.stats()
        depths = self._queue_depths()
        for entry in shard_stats:
            entry["queue_depth"] = depths.get(entry["shard"], 0)
        return {
            **self.healthz(),
            "queue": {
                "pending": self._pending,
                "max_pending": self.config.max_pending,
                "depth_per_shard": depths,
            },
            "jobs": self.jobs.counts(),
            "poison": {
                "tracked": len(self._poison_counts),
                "quarantined": len(self._quarantined),
            },
            "latency": self.latency.as_dict(),
            "coalescing": {
                "ticks": sum(s["ticks"] for s in shard_stats),
                "coalesced_requests": sum(
                    s["coalesced_requests"] for s in shard_stats
                ),
                "batch_size": self._batch_sizes._default().summary(),
            },
            "shards": shard_stats,
            "distance": global_distance_stats().as_dict(),
        }

    def _queue_depths(self) -> dict:
        """Shard label → jobs currently sitting in that shard's queue."""
        return {
            runtime.shard.key.label: runtime.queue.qsize()
            for runtime in self._runtimes.values()
        }

    def metrics_text(self) -> str:
        """The ``GET /metrics`` body: this service + the process registry."""
        return self.metrics.render_prometheus() + REGISTRY.render_prometheus()

    def _runtime_families(self) -> list:
        """Scrape-time gauges over live service state (no double bookkeeping)."""
        latency = self.latency.as_dict()
        families = [
            {
                "name": "repro_service_uptime_seconds",
                "type": "gauge",
                "help": "seconds since the service started",
                "samples": [({}, round(self.healthz()["uptime_s"], 3))],
            },
            {
                "name": "repro_service_pending_jobs",
                "type": "gauge",
                "help": "jobs currently queued or running",
                "samples": [({}, self._pending)],
            },
            {
                "name": "repro_service_queue_depth",
                "type": "gauge",
                "help": "queued jobs per shard",
                "samples": [
                    ({"shard": label}, depth)
                    for label, depth in self._queue_depths().items()
                ],
            },
            {
                "name": "repro_service_latency_window",
                "type": "gauge",
                "help": "sliding-window latency readout (count, p50_s, ...)",
                "samples": [
                    ({"stat": key}, value)
                    for key, value in latency.items()
                    if isinstance(value, (int, float))
                ],
            },
        ]
        return families

    # ------------------------------------------------------------------
    # shard workers
    # ------------------------------------------------------------------
    def _runtime_for(self, shard: Shard) -> _ShardRuntime:
        runtime = self._runtimes.get(shard.key)
        if runtime is None:
            runtime = _ShardRuntime(shard)
            runtime.task = asyncio.get_running_loop().create_task(
                self._shard_worker(runtime), name=f"shard-{shard.key.label}"
            )
            self._runtimes[shard.key] = runtime
        return runtime

    async def _shard_worker(self, runtime: _ShardRuntime) -> None:
        """Drain-and-execute loop: one tick (plus queued cleans) per wake-up."""
        while True:
            items = [await runtime.queue.get()]
            while True:
                try:
                    items.append(runtime.queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            runtime.inflight = len(items)
            try:
                delta_items = [
                    (job, spec)
                    for job, spec in items
                    if isinstance(spec, DeltaRequestSpec)
                ]
                clean_items = [
                    (job, spec)
                    for job, spec in items
                    if isinstance(spec, CleanRequestSpec)
                ]
                if delta_items:
                    await self._run_tick(runtime.shard, delta_items)
                for job, spec in clean_items:
                    await self._run_clean(runtime.shard, job, spec)
            finally:
                runtime.inflight = 0

    def _traced(
        self, parent: Optional[Span], name: str, attrs: dict, fn: Callable
    ) -> Callable:
        """Wrap an executor callable in a span parented to the job's root.

        Context variables do not propagate into executor threads, so the
        service tracer and the root span are re-attached explicitly on the
        thread before the work span opens.  Without a tracer the callable is
        returned unwrapped (zero overhead on the hot path).
        """
        if self.tracer is None:
            return fn

        def run():
            with use_tracer(self.tracer), self.tracer.attach(parent):
                with span(name, **attrs):
                    return fn()

        return run

    async def _run_clean(
        self, shard: Shard, job: Job, spec: CleanRequestSpec
    ) -> None:
        if job.expired():
            job.fail("deadline exceeded before execution", kind="deadline")
            self._finalize(job)
            return
        job.mark_running()
        loop = asyncio.get_running_loop()
        work = self._traced(
            self._job_spans.get(job.id),
            "shard.clean",
            {"shard": shard.key.label},
            partial(self._execute_clean, shard, spec),
        )
        try:
            result, report = await loop.run_in_executor(self._executor, work)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.fail(f"{type(exc).__name__}: {exc}")
        else:
            job.finish(result, report)
            shard.jobs_done += 1
        self._finalize(job)

    def _execute_clean(self, shard: Shard, spec: CleanRequestSpec):
        """Thread-side: resolve the data, run the shard's warm session."""
        table, ground_truth = self.pool.resolve_clean_inputs(spec)
        report = shard.session.run(table=table, ground_truth=ground_truth)
        result = {
            "kind": "clean",
            "shard": shard.key.label,
            "backend": report.backend,
            "signature": report_signature(report),
            "metrics": {
                key: round(value, 6) for key, value in report.summary().items()
            },
        }
        if spec.include_report:
            result["report"] = report.to_json_dict()
        return result, report

    async def _run_tick(self, shard: Shard, items: list) -> None:
        # Loop-side triage before any executor time is spent: requests whose
        # deadline already passed get a structured "deadline" failure, and
        # quarantined poison keys fail fast instead of crashing the shard
        # again.  Only what survives is dispatched as the coalesced tick.
        live = []
        for job, spec in items:
            if job.expired():
                job.fail("deadline exceeded before execution", kind="deadline")
                self._finalize(job)
                continue
            if self._quarantined:
                key = self._poison_key(spec)
                if key in self._quarantined:
                    job.fail(
                        "request quarantined as a poison job (crashed its "
                        f"shard {self.config.poison_threshold} times): "
                        f"{self._quarantined[key]}",
                        kind="poison",
                    )
                    self._finalize(job)
                    continue
            live.append((job, spec))
        if not live:
            return
        jobs = [job for job, _spec in live]
        specs = [spec for _job, spec in live]
        for job in jobs:
            job.mark_running()
        self._batch_sizes.observe(len(specs))
        # The coalesced tick executes once, under the *first* job's trace;
        # every other folded job gets a marker span under its own root, so
        # each job still yields one connected tree.
        if self.tracer is not None:
            for job in jobs[1:]:
                marker = self.tracer.begin(
                    "shard.tick",
                    parent=self._job_spans.get(job.id),
                    shard=shard.key.label,
                    coalesced_into=jobs[0].id,
                )
                self.tracer.end(marker)
        work = self._traced(
            self._job_spans.get(jobs[0].id),
            "shard.tick",
            {"shard": shard.key.label, "requests": len(specs)},
            partial(self._execute_tick, shard, specs),
        )
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(self._executor, work)
        except ShardDegradedError as exc:
            # the shard's durable store is shedding writes; clients retry
            for job in jobs:
                job.fail(str(exc), kind="unavailable")
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            message = f"{type(exc).__name__}: {exc}"
            for job in jobs:
                job.fail(message)
        else:
            for job, result in zip(jobs, results):
                if "error" in result:
                    poison_key = result.pop("poison_key", None)
                    if poison_key is not None:
                        self._record_poison(poison_key, result["error"])
                    job.fail(result["error"], kind=result.get("error_kind", "internal"))
                else:
                    job.finish(result)
                    shard.jobs_done += 1
        for job in jobs:
            self._finalize(job)

    def _execute_tick(self, shard: Shard, specs: list) -> list:
        """Thread-side: one coalesced engine tick for all queued delta specs.

        Requests carrying an ``idempotency_key`` the shard already applied
        are answered from the shard's memo (a byte-identical replay of the
        original ack, or a structured duplicate ack after a restart) without
        touching the engine — the exactly-once half of the client's
        at-least-once retries.  Only fresh requests reach
        :meth:`_apply_specs`.
        """
        results: list = [None] * len(specs)
        fresh: list = []  # (index, spec) pairs that actually apply
        first_seen: dict = {}  # key -> index of its first fresh occurrence
        aliases: list = []  # (index, first_index): same key twice in one tick
        for index, spec in enumerate(specs):
            key = spec.idempotency_key
            if key is not None and key in shard.applied_keys:
                results[index] = shard.replayed_result(key)
            elif key is not None and key in first_seen:
                aliases.append((index, first_seen[key]))
            else:
                if key is not None:
                    first_seen[key] = index
                fresh.append((index, spec))
        if fresh:
            applied = self._apply_specs(shard, [spec for _i, spec in fresh])
            for (index, _spec), result in zip(fresh, applied):
                results[index] = result
        for index, first_index in aliases:
            first = results[first_index]
            if "error" in first:
                # the original attempt failed, so nothing was applied; the
                # duplicate reports the same failure (minus poison blame —
                # one crash is one strike, not one per folded copy)
                results[index] = {
                    k: v for k, v in first.items() if k != "poison_key"
                }
            else:
                results[index] = shard.replayed_result(specs[index].idempotency_key)
        return results

    def _apply_specs(self, shard: Shard, specs: list) -> list:
        """Thread-side: really apply fresh delta specs as one engine tick.

        If the *combined* batch fails validation (e.g. two requests deleting
        the same tuple), fall back to applying each request as its own batch
        so only the offending requests fail — validation happens before any
        mutation, so the fallback starts from untouched state.  A
        *non*-validation crash discards the in-memory stream (the durable
        state is the only truth) and re-runs per request so exactly the
        poisonous ones are blamed.
        """
        if self.durability is not None:
            ensure = getattr(self.durability, "ensure_writable", None)
            if ensure is not None:
                # raises ShardDegradedError while the shard's WAL is sick
                ensure(shard)
        engine = self._ensure_engine(shard, specs[0])
        plan = plan_tick([spec.deltas for spec in specs])
        try:
            if INJECTOR.active:
                INJECTOR.crash("service.apply", shard=shard.key.fingerprint)
            batch_report = engine.apply_batch(plan.batch)
        except (KeyError, ValueError):
            return self._execute_per_request(shard, specs)
        except ShardDegradedError:
            raise
        except Exception:  # noqa: BLE001 - poison isolation boundary
            if self.durability is None:
                # no durable state to recover from: keep the historical
                # behavior (the whole tick fails as an internal error)
                raise
            self._shed_stream(shard)
            return self._execute_per_request(shard, specs)
        results = [
            self._delta_result(
                engine,
                batch_report,
                requests=len(specs),
                deltas=plan.deltas_of(index),
                include_table=spec.include_table,
            )
            for index, spec in enumerate(specs)
        ]
        keys = [spec.idempotency_key for spec in specs if spec.idempotency_key]
        for spec, result in zip(specs, results):
            if spec.idempotency_key:
                shard.remember_key(spec.idempotency_key, result)
        if self.durability is not None:
            try:
                # fsynced before any folded job is acknowledged: an acked
                # delta batch survives kill -9 (and carries its request keys
                # so replay re-arms the duplicate filter)
                if keys:
                    self.durability.log_tick(
                        shard, plan.batch, batch_report, keys=keys
                    )
                else:
                    self.durability.log_tick(shard, plan.batch, batch_report)
            except DurabilityError as exc:
                for key in keys:
                    shard.forget_key(key)
                self._shed_stream(shard)
                return [
                    {"error": str(exc), "error_kind": "unavailable"}
                    for _ in specs
                ]
        shard.ticks += 1
        shard.coalesced_requests += len(specs)
        return results

    def _ensure_engine(self, shard: Shard, spec: DeltaRequestSpec):
        """Return the shard's live stream engine, creating + recovering it."""
        if shard.stream is not None:
            return shard.stream
        # the schema lookup can build a (1-tuple) workload instance, so
        # resolve it only for the tick that actually creates the engine
        engine = shard.stream_engine(self.pool.schema_for(spec))
        if self.durability is not None:
            try:
                # recovery happens inside attach: snapshot restore + WAL
                # tail replay into the freshly created engine
                self.durability.attach(shard, engine, spec)
            except Exception:
                # leave no half-recovered engine behind; the next tick
                # recreates one and re-attempts recovery
                shard.stream = None
                raise
        return engine

    def _shed_stream(self, shard: Shard) -> None:
        """Discard a shard's in-memory stream; the durable state is truth.

        Used when an apply crashed mid-tick (the engine may be
        half-mutated) or the WAL refused a write (in-memory state outran
        the log).  The next tick recreates the engine and recovery replays
        the snapshot + WAL tail into it.
        """
        shard.stream = None
        if self.durability is not None:
            self.durability.detach(shard)

    def _execute_per_request(self, shard: Shard, specs: list) -> list:
        results = []
        ensure = (
            getattr(self.durability, "ensure_writable", None)
            if self.durability is not None
            else None
        )
        for spec in specs:
            try:
                if ensure is not None:
                    ensure(shard)
                engine = self._ensure_engine(shard, spec)
                if INJECTOR.active:
                    INJECTOR.crash("service.apply", shard=shard.key.fingerprint)
                report = engine.apply_batch(spec.deltas)
            except (KeyError, ValueError) as exc:
                # validation rejected the request's deltas before mutating
                # anything: that is the client's mistake, not a server bug
                results.append(
                    {
                        "error": f"{type(exc).__name__}: {exc}",
                        "error_kind": "bad_request",
                    }
                )
                continue
            except ShardDegradedError as exc:
                results.append({"error": str(exc), "error_kind": "unavailable"})
                continue
            except Exception as exc:  # noqa: BLE001 - poison isolation
                if self.durability is None:
                    raise
                self._shed_stream(shard)
                results.append(self._poison_result(spec, exc))
                continue
            key = spec.idempotency_key
            result = self._delta_result(
                engine,
                report,
                requests=1,
                deltas=len(spec.deltas),
                include_table=spec.include_table,
            )
            if key:
                shard.remember_key(key, result)
            if self.durability is not None:
                try:
                    # each surviving request became its own engine tick, so
                    # it gets its own WAL record — replay retraces this path
                    if key:
                        self.durability.log_tick(
                            shard, spec.deltas, report, keys=[key]
                        )
                    else:
                        self.durability.log_tick(shard, spec.deltas, report)
                except DurabilityError as exc:
                    if key:
                        shard.forget_key(key)
                    self._shed_stream(shard)
                    results.append(
                        {"error": str(exc), "error_kind": "unavailable"}
                    )
                    continue
            shard.ticks += 1
            shard.coalesced_requests += 1
            results.append(result)
        return results

    def _poison_key(self, spec: DeltaRequestSpec) -> str:
        """Stable identity of a delta request for poison-crash accounting."""
        if getattr(spec, "idempotency_key", None):
            return spec.idempotency_key
        blob = json.dumps(
            spec.deltas.to_json_list(), sort_keys=True, separators=(",", ":")
        )
        return "sha:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]

    def _poison_result(self, spec: DeltaRequestSpec, exc: BaseException) -> dict:
        return {
            "error": f"{type(exc).__name__}: {exc}",
            "error_kind": "internal",
            "poison_key": self._poison_key(spec),
        }

    #: distinct poison keys tracked before the oldest counts are dropped
    MAX_POISON_TRACKED = 256

    def _record_poison(self, key: str, error: str) -> None:
        """Loop-side: count one shard-crashing attempt; park repeat offenders."""
        count = self._poison_counts.get(key, 0) + 1
        self._poison_counts[key] = count
        self._poison_counts.move_to_end(key)
        while len(self._poison_counts) > self.MAX_POISON_TRACKED:
            self._poison_counts.popitem(last=False)
        if count >= self.config.poison_threshold and key not in self._quarantined:
            log.warning(
                "quarantining poison request %s after %d shard crashes: %s",
                key, count, error,
            )
            self._quarantined[key] = error
            while len(self._quarantined) > self.MAX_POISON_TRACKED:
                self._quarantined.popitem(last=False)

    @staticmethod
    def _delta_result(
        engine, report, requests: int, deltas: int, include_table: bool
    ) -> dict:
        """One request's demultiplexed view of the tick it was folded into.

        The cleaned-table snapshot is the shard state *after the whole
        tick* — coalesced requests observe each other's deltas, exactly as
        if they had been applied back to back.
        """
        result = {
            "kind": "deltas",
            "tick": report.sequence,
            "coalesced_requests": requests,
            "deltas": deltas,
            "applied": dict(report.delta_counts),
            "affected_blocks": list(report.affected_blocks),
            "evicted_tids": list(report.evicted_tids),
            "tuples_total": report.tuples_total,
        }
        if include_table:
            result["cleaned"] = table_to_json_dict(engine.cleaned)
        return result

    def _finalize(self, job: Job) -> None:
        self._pending -= 1
        if job.duration is not None:
            self.latency.record(job.duration)
            self._job_seconds.labels(shard=job.shard).observe(job.duration)
        self._jobs_total.labels(kind=job.kind, status=job.status.value).inc()
        root = self._job_spans.pop(job.id, None)
        if root is not None and self.tracer is not None:
            root.set(job_status=job.status.value)
            if job.error is not None:
                root.status = "error"
                root.error = job.error
            self.tracer.end(root)
            if self.config.trace_dir:
                self._export_trace(job, root)

    def _export_trace(self, job: Job, root: Span) -> None:
        """Write (and free) one finished job's span tree as Chrome JSON."""
        spans = self.tracer.pop_trace(root.trace_id)
        directory = Path(self.config.trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"trace-{job.id}.json"
        path.write_text(json.dumps(to_chrome(spans)), encoding="utf-8")
