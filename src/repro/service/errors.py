"""Service-level error types and their HTTP mapping.

Three failure classes cover the front end:

* :class:`BadRequestError` — the request itself is malformed (shape,
  types, impossible combinations).  Registry lookups raising ``KeyError``
  (unknown workload / cleaner / backend names) are treated the same way:
  both map to a structured ``400`` JSON body that carries the
  :func:`repro.registry.unknown_name`-style listing instead of a 500
  traceback.
* :class:`ServiceOverloadedError` — the bounded job queue is full; maps to
  ``503`` with a ``Retry-After`` hint.  Backpressure is a *feature*: the
  service sheds load loudly instead of queueing unboundedly.
* anything else — a genuine bug; maps to ``500`` with the exception type
  (no traceback leaves the process).
"""

from __future__ import annotations


class BadRequestError(ValueError):
    """The request cannot be executed as stated (HTTP 400)."""


class ServiceOverloadedError(RuntimeError):
    """The bounded job queue is full; retry later (HTTP 503)."""

    def __init__(self, pending: int, max_pending: int):
        super().__init__(
            f"service overloaded: {pending} jobs pending, "
            f"bounded at {max_pending}; retry later"
        )
        self.pending = pending
        self.max_pending = max_pending


class ServiceDrainingError(RuntimeError):
    """The service is draining for shutdown or handoff (HTTP 503).

    New submissions are refused while queued jobs finish and shard state is
    checkpointed; a retrying client (``ServiceClient(retries=...)``) rides
    it out, landing on the restarted worker or the shard's new owner.
    """

    def __init__(self) -> None:
        super().__init__("service is draining; retry later")


class ShardDegradedError(RuntimeError):
    """The shard's durable store is failing writes; shedding deltas (HTTP 503).

    A WAL append or fsync error flips the shard into ``durability=degraded``
    instead of crashing the worker: the in-memory state that outran the log
    is discarded (nothing unacknowledged survives), delta writes answer 503
    + ``Retry-After`` while the disk is sick, and a periodic probe lets the
    first tick after ``retry_after`` seconds re-attach and recover from the
    durable state — writes succeeding again clears the mode.
    """

    def __init__(self, fingerprint: str, retry_after: float = 1.0):
        super().__init__(
            f"shard {fingerprint[:10]} is in durability=degraded (its "
            f"write-ahead log is failing writes); retry in {retry_after:g}s"
        )
        self.fingerprint = fingerprint
        self.retry_after = retry_after


class PoolExhaustedError(RuntimeError):
    """Too many distinct warm shards; shed the request (HTTP 503).

    Shards hold live state (warm sessions, streaming engines with their
    tables), so they cannot be silently evicted the way pure caches can —
    a request that would create one beyond the bound is refused instead.
    """

    def __init__(self, shards: int, max_shards: int):
        super().__init__(
            f"session pool exhausted: {shards} warm shards, bounded at "
            f"{max_shards}; reuse an existing workload/cleaner/config "
            f"combination or retry later"
        )
        self.shards = shards
        self.max_shards = max_shards
