"""Micro-batch coalescing: many queued delta requests, one engine tick.

The streaming engine's costs are dominated by *which blocks a tick dirties*,
not by how many deltas dirtied them — so under load, folding every delta
request queued for a shard into one ``apply_batch`` call amortises Stage I
and Stage II across all of them.  :func:`plan_tick` builds that combined
batch, preserving arrival order and remembering each request's slice so the
per-request results can be demultiplexed afterwards.

Why coalescing cannot change any answer: the engine's affected-set tracking
is exact, so its post-tick state is a pure function of the *current table
contents* (see :mod:`repro.streaming.cleaner` — any replay of the same
deltas converges to the batch-MLNClean result on the resulting table).
Applying requests A and B as one combined batch therefore leaves the shard
in exactly the state of applying A then B as two batches, which is what the
service equivalence tests assert bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.streaming.delta import DeltaBatch


@dataclass
class TickPlan:
    """One combined micro-batch plus the per-request slice boundaries."""

    #: every queued request's deltas, concatenated in arrival order
    batch: DeltaBatch = field(default_factory=DeltaBatch)
    #: per request: (start, end) half-open index range inside ``batch``
    slices: list = field(default_factory=list)

    @property
    def requests(self) -> int:
        return len(self.slices)

    def deltas_of(self, index: int) -> int:
        """How many deltas request ``index`` contributed."""
        start, end = self.slices[index]
        return end - start


def plan_tick(batches: list) -> TickPlan:
    """Fold the queued requests' :class:`DeltaBatch` list into one tick."""
    plan = TickPlan()
    cursor = 0
    for batch in batches:
        for delta in batch:
            plan.batch.add(delta)
        plan.slices.append((cursor, cursor + len(batch)))
        cursor += len(batch)
    return plan
