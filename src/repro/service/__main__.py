"""Command-line entry point of the cleaning service.

Usage (with the package installed, or ``PYTHONPATH=src``)::

    python -m repro.service serve --port 8735
    python -m repro.service serve --host 0.0.0.0 --port 8735 \\
        --max-pending 128 --workers 8 --log-level info

The operational flags (``--log-level``, ``--seed``) are shared with
``python -m repro.experiments`` through :mod:`repro.cli`, so both CLIs
spell them identically.
"""

from __future__ import annotations

import argparse
import asyncio
import logging

from repro.cli import common_parent, configure_logging
from repro.service.http import serve
from repro.service.service import ServiceConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="serve concurrent data-cleaning requests over HTTP",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve_cmd = commands.add_parser(
        "serve", parents=[common_parent()], help="run the HTTP cleaning service"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_cmd.add_argument("--port", type=int, default=8080, help="bind port")
    serve_cmd.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="bounded backpressure: queued-or-running jobs before 503s",
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=4, help="cleaning executor threads"
    )
    serve_cmd.add_argument(
        "--trace-dir",
        default=None,
        help="trace every job; write one Chrome trace_event JSON per "
        "finished job into this directory",
    )
    serve_cmd.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds a graceful SIGTERM/SIGINT shutdown waits for queued jobs",
    )

    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    config = ServiceConfig(
        max_pending=args.max_pending,
        executor_workers=args.workers,
        default_seed=args.seed,
        trace_dir=args.trace_dir,
    )
    logging.getLogger("repro.service").info(
        "starting: host=%s port=%d max_pending=%d workers=%d trace_dir=%s",
        args.host,
        args.port,
        config.max_pending,
        config.executor_workers,
        config.trace_dir,
    )
    try:
        asyncio.run(
            serve(args.host, args.port, config, drain_timeout=args.drain_timeout)
        )
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
