"""Markov logic network substrate.

The paper builds MLNClean on top of Markov logic networks (Definition 1 and
Eq. 2) and borrows the weight learner of Tuffy (diagonal Newton).  Because no
external MLN engine is available offline, this package implements the pieces
MLNClean needs from scratch:

* :mod:`repro.mln.formula` — ground atoms, literals, and weighted clauses,
* :mod:`repro.mln.network` — the :class:`MarkovLogicNetwork` container with
  the log-linear world distribution of Eq. 2,
* :mod:`repro.mln.grounding` — grounding of FD / CFD / DC rules against a
  table (Table 3 of the paper),
* :mod:`repro.mln.weights` — the Eq. 4 prior and the diagonal-Newton
  pseudo-likelihood weight learner used by the RSC stage,
* :mod:`repro.mln.inference` — exact enumeration and Gibbs-sampling marginal
  inference, used by tests and the probabilistic baseline.
"""

from repro.mln.formula import Atom, Literal, Clause
from repro.mln.network import MarkovLogicNetwork
from repro.mln.grounding import GroundClause, ground_rule, ground_rules
from repro.mln.weights import (
    DiagonalNewtonLearner,
    WeightLearningConfig,
    prior_weights,
    learn_group_weights,
)
from repro.mln.inference import ExactInference, GibbsSampler

__all__ = [
    "Atom",
    "Literal",
    "Clause",
    "MarkovLogicNetwork",
    "GroundClause",
    "ground_rule",
    "ground_rules",
    "DiagonalNewtonLearner",
    "WeightLearningConfig",
    "prior_weights",
    "learn_group_weights",
    "ExactInference",
    "GibbsSampler",
]
