"""MLN weight learning.

The RSC stage of MLNClean multiplies a distance term by the Markov weight of
every piece of data (Definition 2 and Eq. 3).  The paper computes those
weights with "the MLN weight learning method from Tuffy, which adopts the
diagonal Newton method", starting from the prior of Eq. 4:

    w0_i = c(γ_i) / Σ_j c(γ_j)

where ``c(γ)`` is the number of tuples supporting γ and the sum ranges over
the distinct γs of the block.

This module implements that learner as a pseudo-likelihood optimiser.  Within
each group of a block the distinct γs compete to explain the observed tuples,
so the conditional likelihood of the evidence given the weights is the
multinomial

    L(w) = Σ_groups Σ_{γ in group} c(γ) · log softmax_group(w)_γ
           − (λ/2) · Σ_γ (w_γ − w0_γ)²

whose gradient and diagonal Hessian have closed forms; the learner performs
damped diagonal-Newton updates exactly in the spirit of Tuffy's learner.  The
learned weights preserve the property MLNClean relies on (Eq. 3): better
supported, more consistent γs receive larger weights.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.mln.grounding import GroundClause


@dataclass
class WeightLearningConfig:
    """Hyper-parameters of the diagonal-Newton pseudo-likelihood learner."""

    #: maximum number of Newton iterations
    max_iterations: int = 50
    #: convergence threshold on the max absolute weight change
    tolerance: float = 1e-6
    #: strength of the Gaussian prior pulling weights towards the Eq.-4 prior
    prior_strength: float = 1.0
    #: damping added to the Hessian diagonal for numerical stability
    damping: float = 1e-3
    #: cap on the absolute value of a learned weight
    max_weight: float = 25.0
    #: cap on the magnitude of one Newton step.  The diagonal Hessian
    #: underestimates the curvature of the group softmax, so an unbounded
    #: Newton step overshoots and oscillates; Tuffy damps its updates the
    #: same way.
    max_step: float = 2.0


def prior_weights(groundings: Sequence[GroundClause]) -> dict[GroundClause, float]:
    """The Eq.-4 prior: support of each γ over the total support of the block."""
    total = sum(g.support for g in groundings)
    if total == 0:
        return {g: 0.0 for g in groundings}
    return {g: g.support / total for g in groundings}


def learn_group_weights(
    group_counts: Mapping[str, Mapping[tuple, int]],
    priors: Mapping[tuple, float],
    config: WeightLearningConfig | None = None,
) -> dict[tuple, float]:
    """Learn one weight per γ key from grouped support counts.

    ``group_counts`` maps a group identifier to ``{γ key: tuple count}``;
    ``priors`` maps γ keys to their Eq.-4 prior.  Returns the learned weight
    per γ key.  This is the low-level entry point used by the
    :class:`DiagonalNewtonLearner`.
    """
    config = config or WeightLearningConfig()
    keys: list[tuple] = []
    for counts in group_counts.values():
        for key in counts:
            if key not in keys:
                keys.append(key)
    if not keys:
        return {}

    # Groups that share no γ key have fully independent likelihoods (a key's
    # gradient only ever involves its own group), so each such component is
    # converged separately.  This keeps a group's learned weights bit-stable
    # when *other* groups of the block change — without it, every group
    # would step for the same globally determined number of iterations and a
    # local change would perturb all weights of the block.  The incremental
    # engine (repro.streaming) relies on this stability to re-fuse only the
    # tuples whose weights actually moved.
    weights: dict[tuple, float] = {}
    for component in _key_disjoint_components(group_counts):
        weights.update(_learn_component(component, priors, config))
    return {key: weights[key] for key in keys}


def _key_disjoint_components(
    group_counts: Mapping[str, Mapping[tuple, int]],
) -> list[list[Mapping[tuple, int]]]:
    """Partition the groups into components connected by shared γ keys."""
    components: list[list[Mapping[tuple, int]]] = []
    component_of_key: dict[tuple, int] = {}
    for counts in group_counts.values():
        if not counts:
            continue
        touched = sorted({component_of_key[k] for k in counts if k in component_of_key})
        if not touched:
            index = len(components)
            components.append([counts])
        else:
            # merge every touched component into the first one
            index = touched[0]
            components[index].append(counts)
            for other in touched[1:]:
                for moved in components[other]:
                    components[index].append(moved)
                    for key in moved:
                        component_of_key[key] = index
                components[other] = []
        for key in counts:
            component_of_key[key] = index
    return [component for component in components if component]


def _learn_component(
    component: list[Mapping[tuple, int]],
    priors: Mapping[tuple, float],
    config: WeightLearningConfig,
) -> dict[tuple, float]:
    """Damped diagonal-Newton iteration over one key-connected component."""
    keys: list[tuple] = []
    for counts in component:
        for key in counts:
            if key not in keys:
                keys.append(key)
    weights = {key: float(priors.get(key, 0.0)) for key in keys}

    for _ in range(config.max_iterations):
        gradient = {key: 0.0 for key in keys}
        hessian = {key: 0.0 for key in keys}
        for counts in component:
            total = sum(counts.values())
            probabilities = _softmax({k: weights[k] for k in counts})
            for key in counts:
                p = probabilities[key]
                gradient[key] += counts[key] - total * p
                hessian[key] += total * p * (1.0 - p)
        largest_change = 0.0
        for key in keys:
            prior = priors.get(key, 0.0)
            grad = gradient[key] - config.prior_strength * (weights[key] - prior)
            hess = hessian[key] + config.prior_strength + config.damping
            step = _clip(grad / hess, config.max_step)
            new_weight = _clip(weights[key] + step, config.max_weight)
            largest_change = max(largest_change, abs(new_weight - weights[key]))
            weights[key] = new_weight
        if largest_change < config.tolerance:
            break
    return weights


class DiagonalNewtonLearner:
    """Weight learner over the groundings of one block of the MLN index.

    The learner groups the block's groundings by their reason values (the
    groups of the MLN index), computes the Eq.-4 prior, and runs the
    diagonal-Newton pseudo-likelihood optimisation.  The result is a weight
    per :class:`GroundClause` that the RSC and FSCR stages consume.
    """

    def __init__(self, config: WeightLearningConfig | None = None):
        self.config = config or WeightLearningConfig()
        #: number of Newton iterations performed in the last :meth:`learn` call
        self.last_iterations = 0

    def learn(self, groundings: Sequence[GroundClause]) -> dict[GroundClause, float]:
        """Learn and return the weight of every grounding of a block."""
        if not groundings:
            return {}
        priors_by_clause = prior_weights(groundings)
        by_key = {g.key: g for g in groundings}
        group_counts: dict[str, dict[tuple, int]] = {}
        for grounding in groundings:
            group_id = "|".join(grounding.reason_values)
            group_counts.setdefault(group_id, {})[grounding.key] = grounding.support
        priors = {g.key: priors_by_clause[g] for g in groundings}
        learned = learn_group_weights(group_counts, priors, self.config)
        weights = {by_key[key]: weight for key, weight in learned.items()}
        for grounding, weight in weights.items():
            grounding.clause.weight = weight
        return weights


def _softmax(scores: Mapping[tuple, float]) -> dict[tuple, float]:
    peak = max(scores.values())
    exponentials = {key: math.exp(value - peak) for key, value in scores.items()}
    total = sum(exponentials.values())
    return {key: value / total for key, value in exponentials.items()}


def _clip(value: float, bound: float) -> float:
    return max(-bound, min(bound, value))
