"""The Markov logic network container and its world distribution.

Definition 1 of the paper: an MLN ``L`` is a set of rule/weight pairs
``(ri, wi)``.  Together with a set of constants it defines a ground Markov
network whose world distribution is the log-linear model of Eq. 2:

    Pr(x) = (1/Z) * exp( Σ_i  w_i * n_i(x) )

where ``n_i(x)`` is the number of true groundings of rule ``i`` in world
``x``.  This module implements that distribution exactly (by enumeration of
worlds) for networks small enough to enumerate; the sampler in
:mod:`repro.mln.inference` covers the rest.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Mapping
from typing import Optional

from repro.mln.formula import Atom, Clause


class MarkovLogicNetwork:
    """A weighted set of (ground) clauses over boolean atoms."""

    def __init__(self, clauses: Optional[Iterable[Clause]] = None):
        self._clauses: list[Clause] = []
        if clauses is not None:
            for clause in clauses:
                self.add_clause(clause)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_clause(self, clause: Clause) -> None:
        """Add one weighted clause."""
        self._clauses.append(clause)

    def add(self, clause: Clause, weight: float) -> None:
        """Add a clause with an explicit weight."""
        self._clauses.append(clause.with_weight(weight))

    @property
    def clauses(self) -> list[Clause]:
        return list(self._clauses)

    @property
    def atoms(self) -> list[Atom]:
        """All distinct atoms mentioned by any clause, in first-seen order."""
        seen: dict[Atom, None] = {}
        for clause in self._clauses:
            for atom in clause.atoms:
                seen.setdefault(atom, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self._clauses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MarkovLogicNetwork({len(self._clauses)} clauses, {len(self.atoms)} atoms)"

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def world_score(self, world: Mapping[Atom, bool]) -> float:
        """The unnormalised log-score ``Σ_i w_i n_i(x)`` of a world."""
        return sum(
            clause.weight for clause in self._clauses if clause.is_satisfied(world)
        )

    def world_probability(self, world: Mapping[Atom, bool]) -> float:
        """Exact Eq.-2 probability of a world (enumerates the state space)."""
        log_z = self.log_partition_function()
        return math.exp(self.world_score(world) - log_z)

    def log_partition_function(self, max_atoms: int = 22) -> float:
        """``log Z`` of Eq. 2 by explicit enumeration.

        Only feasible for small ground networks; larger networks should use
        sampling-based estimates instead.
        """
        atoms = self.atoms
        if len(atoms) > max_atoms:
            raise ValueError(
                f"refusing to enumerate 2^{len(atoms)} worlds; "
                f"use GibbsSampler for networks this large"
            )
        scores = []
        for assignment in itertools.product([False, True], repeat=len(atoms)):
            world = dict(zip(atoms, assignment))
            scores.append(self.world_score(world))
        return _log_sum_exp(scores)

    def clause_true_count(self, world: Mapping[Atom, bool]) -> int:
        """Number of clauses satisfied by a world."""
        return sum(1 for clause in self._clauses if clause.is_satisfied(world))

    def clauses_for_atom(self, atom: Atom) -> list[Clause]:
        """All clauses mentioning ``atom`` (the atom's Markov blanket)."""
        return [clause for clause in self._clauses if atom in clause.atoms]


def _log_sum_exp(values: list[float]) -> float:
    if not values:
        return float("-inf")
    peak = max(values)
    return peak + math.log(sum(math.exp(v - peak) for v in values))
