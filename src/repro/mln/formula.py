"""Ground atoms, literals and clauses of a Markov logic network.

An MLN rule in the paper is a disjunction of literals, ``l1 ∨ l2 ∨ ... ∨ ln``,
where each literal applies a predicate symbol to a constant or a variable
(Section 3).  After grounding, every literal refers to a *ground atom* — a
boolean random variable such as ``CT("DOTHAN")`` — and a clause is satisfied
by a world (a truth assignment to the atoms) when at least one of its literals
is true.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass


@dataclass(frozen=True)
class Atom:
    """A ground atom: a predicate symbol applied to a constant value.

    ``Atom("CT", "DOTHAN")`` renders as ``CT("DOTHAN")`` and is a boolean
    random variable of the ground Markov network.
    """

    predicate: str
    constant: str

    def render(self) -> str:
        return f'{self.predicate}("{self.constant}")'

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.render()


@dataclass(frozen=True)
class Literal:
    """An atom or its negation."""

    atom: Atom
    negated: bool = False

    def evaluate(self, world: Mapping[Atom, bool]) -> bool:
        """Truth value of the literal under a world (missing atoms are False)."""
        value = world.get(self.atom, False)
        return (not value) if self.negated else value

    def render(self) -> str:
        prefix = "¬" if self.negated else ""
        return f"{prefix}{self.atom.render()}"

    def negate(self) -> "Literal":
        return Literal(self.atom, not self.negated)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.render()


class Clause:
    """A weighted disjunction of literals.

    Clauses are hashable on their literal set so that repeated groundings of
    the same rule collapse naturally in dictionaries.
    """

    __slots__ = ("literals", "weight")

    def __init__(self, literals: Iterable[Literal], weight: float = 0.0):
        literal_list = tuple(literals)
        if not literal_list:
            raise ValueError("a clause needs at least one literal")
        self.literals = literal_list
        self.weight = float(weight)

    @property
    def atoms(self) -> list[Atom]:
        """All distinct atoms referenced by the clause."""
        seen: list[Atom] = []
        for literal in self.literals:
            if literal.atom not in seen:
                seen.append(literal.atom)
        return seen

    def is_satisfied(self, world: Mapping[Atom, bool]) -> bool:
        """True when at least one literal is true under ``world``."""
        return any(literal.evaluate(world) for literal in self.literals)

    def num_true_literals(self, world: Mapping[Atom, bool]) -> int:
        return sum(1 for literal in self.literals if literal.evaluate(world))

    def with_weight(self, weight: float) -> "Clause":
        """A copy of the clause carrying a different weight."""
        return Clause(self.literals, weight)

    def render(self) -> str:
        return " ∨ ".join(literal.render() for literal in self.literals)

    def signature(self) -> tuple[tuple[str, str, bool], ...]:
        """A hashable identity ignoring the weight."""
        return tuple(
            (l.atom.predicate, l.atom.constant, l.negated) for l in self.literals
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clause):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __len__(self) -> int:
        return len(self.literals)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.render()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clause({self.render()!r}, weight={self.weight})"
