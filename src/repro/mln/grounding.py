"""Grounding: turning MLN rules into ground MLN clauses over a dataset.

Grounding "replaces variables in the MLN rule with the corresponding
constants (i.e., attribute values) in the dataset" (Section 3).  Table 3 of
the paper shows the result for the FD ``CT ⇒ ST``: one ground clause
``¬CT(v_ct) ∨ ST(v_st)`` per distinct (CT, ST) value combination observed in
the data.  Each ground clause corresponds to exactly one *piece of data* (γ)
of the MLN index, and its learned weight is the weight MLNClean attaches to
that γ.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.constraints.rules import DenialConstraint, Rule
from repro.dataset.table import Table
from repro.mln.formula import Atom, Clause, Literal


@dataclass(eq=False)
class GroundClause:
    """One grounding of a rule: the clause plus the γ values it came from.

    Instances hash and compare by identity (``eq=False``): two groundings with
    the same values are still distinct objects tied to their own block, and
    the weight learner keys dictionaries on them.

    ``reason_values`` / ``result_values`` are the attribute values of the
    reason and result parts (in the rule's attribute order); ``support``
    counts how many tuples of the dataset produced this grounding, and
    ``tids`` lists them.
    """

    rule: Rule
    clause: Clause
    reason_values: tuple[str, ...]
    result_values: tuple[str, ...]
    support: int = 0
    tids: list[int] = field(default_factory=list)

    @property
    def key(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Identity of the grounding inside its rule's block."""
        return (self.reason_values, self.result_values)

    def record_tuple(self, tid: int) -> None:
        self.support += 1
        self.tids.append(tid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GroundClause({self.rule.name}, reason={self.reason_values}, "
            f"result={self.result_values}, support={self.support})"
        )


def ground_rule(rule: Rule, table: Table) -> list[GroundClause]:
    """All distinct groundings of ``rule`` over ``table``.

    Only tuples covered by the rule contribute (CFDs cover the tuples matching
    at least one reason-part constant; FDs and DCs cover every tuple).
    Groundings are deduplicated on their (reason, result) value combination
    and accumulate tuple support, mirroring Table 3.
    """
    reason_attrs = rule.reason_attributes
    result_attrs = rule.result_attributes
    groundings: dict[tuple[tuple[str, ...], tuple[str, ...]], GroundClause] = {}
    for row in table:
        values = row.as_dict()
        if not rule.covers(values):
            continue
        reason_values = tuple(values[a] for a in reason_attrs)
        result_values = tuple(values[a] for a in result_attrs)
        key = (reason_values, result_values)
        grounding = groundings.get(key)
        if grounding is None:
            clause = _build_clause(rule, reason_attrs, result_attrs, reason_values, result_values)
            grounding = GroundClause(rule, clause, reason_values, result_values)
            groundings[key] = grounding
        grounding.record_tuple(row.tid)
    return list(groundings.values())


def ground_rules(rules: Sequence[Rule], table: Table) -> dict[str, list[GroundClause]]:
    """Groundings of every rule, keyed by rule name."""
    return {rule.name: ground_rule(rule, table) for rule in rules}


def _build_clause(
    rule: Rule,
    reason_attrs: Sequence[str],
    result_attrs: Sequence[str],
    reason_values: Sequence[str],
    result_values: Sequence[str],
) -> Clause:
    """The clausal form of one grounding.

    For implication rules the reason literals are negated and the result
    literals are positive (``¬CT("DOTHAN") ∨ ST("AL")``); denial constraints
    negate every predicate of the grounding.
    """
    literals: list[Literal] = []
    if isinstance(rule, DenialConstraint):
        for attribute, value in zip(reason_attrs, reason_values):
            literals.append(Literal(Atom(attribute, value), negated=True))
        for attribute, value in zip(result_attrs, result_values):
            literals.append(Literal(Atom(attribute, value), negated=False))
        return Clause(literals)
    # FD / CFD: antecedent negated, consequent positive.
    for attribute, value in zip(reason_attrs, reason_values):
        literals.append(Literal(Atom(attribute, value), negated=True))
    for attribute, value in zip(result_attrs, result_values):
        literals.append(Literal(Atom(attribute, value), negated=False))
    return Clause(literals)


def grounding_statistics(groundings: Mapping[str, list[GroundClause]]) -> dict[str, dict[str, int]]:
    """Per-rule counts of distinct groundings and total tuple support."""
    stats: dict[str, dict[str, int]] = {}
    for rule_name, clauses in groundings.items():
        stats[rule_name] = {
            "groundings": len(clauses),
            "support": sum(clause.support for clause in clauses),
            "groups": len({clause.reason_values for clause in clauses}),
        }
    return stats
