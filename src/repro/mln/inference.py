"""Marginal inference over ground Markov logic networks.

MLNClean itself only needs learned weights, but the MLN substrate would be
incomplete without inference: the probabilistic baseline uses marginals to
rank repair candidates and the tests validate the weight learner against
exact probabilities.  Two engines are provided:

* :class:`ExactInference` — enumerates all worlds; exact but exponential, so
  only usable for small ground networks (tests, worked examples).
* :class:`GibbsSampler` — standard Gibbs sampling over the ground atoms with
  a burn-in period; scales to the networks produced by the workloads.
"""

from __future__ import annotations

import itertools
import math
import random
from collections.abc import Iterable, Mapping
from typing import Optional

from repro.mln.formula import Atom
from repro.mln.network import MarkovLogicNetwork


class ExactInference:
    """Exact marginal computation by enumeration of all worlds."""

    def __init__(self, network: MarkovLogicNetwork, max_atoms: int = 20):
        self.network = network
        self.max_atoms = max_atoms

    def marginals(
        self, evidence: Optional[Mapping[Atom, bool]] = None
    ) -> dict[Atom, float]:
        """P(atom = True | evidence) for every non-evidence atom."""
        evidence = dict(evidence or {})
        atoms = [a for a in self.network.atoms if a not in evidence]
        if len(atoms) > self.max_atoms:
            raise ValueError(
                f"refusing to enumerate 2^{len(atoms)} worlds; use GibbsSampler"
            )
        log_weights: list[float] = []
        assignments: list[dict[Atom, bool]] = []
        for values in itertools.product([False, True], repeat=len(atoms)):
            world = dict(zip(atoms, values))
            world.update(evidence)
            log_weights.append(self.network.world_score(world))
            assignments.append(world)
        log_z = _log_sum_exp(log_weights)
        marginals = {atom: 0.0 for atom in atoms}
        for log_weight, world in zip(log_weights, assignments):
            probability = math.exp(log_weight - log_z)
            for atom in atoms:
                if world[atom]:
                    marginals[atom] += probability
        return marginals

    def map_state(
        self, evidence: Optional[Mapping[Atom, bool]] = None
    ) -> dict[Atom, bool]:
        """The most probable world consistent with the evidence."""
        evidence = dict(evidence or {})
        atoms = [a for a in self.network.atoms if a not in evidence]
        if len(atoms) > self.max_atoms:
            raise ValueError(
                f"refusing to enumerate 2^{len(atoms)} worlds; use GibbsSampler"
            )
        best_world: dict[Atom, bool] = dict(evidence)
        best_score = float("-inf")
        for values in itertools.product([False, True], repeat=len(atoms)):
            world = dict(zip(atoms, values))
            world.update(evidence)
            score = self.network.world_score(world)
            if score > best_score:
                best_score = score
                best_world = world
        return best_world


class GibbsSampler:
    """Gibbs sampling marginal inference.

    Atoms are resampled one at a time from their conditional distribution
    given the rest of the world; after ``burn_in`` sweeps the fraction of
    samples in which an atom is true estimates its marginal.
    """

    def __init__(
        self,
        network: MarkovLogicNetwork,
        samples: int = 500,
        burn_in: int = 100,
        seed: int = 7,
    ):
        if samples <= 0:
            raise ValueError("samples must be positive")
        if burn_in < 0:
            raise ValueError("burn_in must be non-negative")
        self.network = network
        self.samples = samples
        self.burn_in = burn_in
        self.seed = seed

    def marginals(
        self, evidence: Optional[Mapping[Atom, bool]] = None
    ) -> dict[Atom, float]:
        """Estimated P(atom = True | evidence) for every non-evidence atom."""
        rng = random.Random(self.seed)
        evidence = dict(evidence or {})
        atoms = [a for a in self.network.atoms if a not in evidence]
        if not atoms:
            return {}
        world: dict[Atom, bool] = dict(evidence)
        for atom in atoms:
            world[atom] = rng.random() < 0.5
        true_counts = {atom: 0 for atom in atoms}
        blankets = {atom: self.network.clauses_for_atom(atom) for atom in atoms}
        total_sweeps = self.burn_in + self.samples
        for sweep in range(total_sweeps):
            for atom in atoms:
                log_odds = 0.0
                for clause in blankets[atom]:
                    world[atom] = True
                    satisfied_true = clause.is_satisfied(world)
                    world[atom] = False
                    satisfied_false = clause.is_satisfied(world)
                    log_odds += clause.weight * (satisfied_true - satisfied_false)
                probability_true = 1.0 / (1.0 + math.exp(-log_odds))
                world[atom] = rng.random() < probability_true
            if sweep >= self.burn_in:
                for atom in atoms:
                    if world[atom]:
                        true_counts[atom] += 1
        return {atom: count / self.samples for atom, count in true_counts.items()}


def _log_sum_exp(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        return float("-inf")
    peak = max(values)
    return peak + math.log(sum(math.exp(v - peak) for v in values))
