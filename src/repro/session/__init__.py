"""Unified session API: one facade over every execution backend and stage.

The package used to expose three divergent entry points — batch
``MLNClean.clean()``, ``DistributedMLNClean.clean()`` and
``StreamingMLNClean`` — each with its own config plumbing and report type.
:class:`CleaningSession` replaces the three-way fork with one facade over
swappable internals:

* :mod:`repro.session.session` — the :class:`CleaningSession` /
  :class:`SessionBuilder` facade plus :func:`load_table` (Table / dict rows /
  CSV) and :func:`load_rules` (strings / Rule objects / rule files),
* :mod:`repro.session.backends` — the :class:`ExecutionBackend` protocol,
  the backend registry (:func:`register_backend`), and the three built-in
  adapters over the existing engines,
* :mod:`repro.session.cleaners` — the :class:`Cleaner` protocol and registry
  (:func:`register_cleaner`): MLNClean and every comparison baseline behind
  one ``with_cleaner(name)`` call, all returning the unified report,
* :mod:`repro.core.stages` (re-exported here) — the pluggable
  :class:`~repro.core.stages.Stage` protocol and registry the batch pipeline
  executes.

Every backend returns the same unified
:class:`~repro.core.report.CleaningReport`; a new execution mode or pipeline
stage is one ``register_backend()`` / ``register_stage()`` call instead of a
three-way code fork.
"""

from repro.core.stages import (
    DEFAULT_STAGES,
    Stage,
    StageContext,
    available_stages,
    get_stage,
    register_stage,
)
from repro.session.backends import (
    BatchBackend,
    CleaningRequest,
    DistributedBackend,
    ExecutionBackend,
    StreamingBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.session.cleaners import (
    Cleaner,
    FactorGraphCleaner,
    HoloCleanCleaner,
    MLNCleanCleaner,
    MinimalRepairCleaner,
    available_cleaners,
    get_cleaner,
    register_cleaner,
)
from repro.session.session import (
    CleaningSession,
    Session,
    SessionBuilder,
    load_rules,
    load_table,
)

__all__ = [
    "CleaningSession",
    "Session",
    "SessionBuilder",
    "load_table",
    "load_rules",
    "ExecutionBackend",
    "CleaningRequest",
    "BatchBackend",
    "DistributedBackend",
    "StreamingBackend",
    "register_backend",
    "available_backends",
    "get_backend",
    "Cleaner",
    "MLNCleanCleaner",
    "HoloCleanCleaner",
    "MinimalRepairCleaner",
    "FactorGraphCleaner",
    "register_cleaner",
    "available_cleaners",
    "get_cleaner",
    "Stage",
    "StageContext",
    "DEFAULT_STAGES",
    "register_stage",
    "available_stages",
    "get_stage",
]
