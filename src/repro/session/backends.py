"""Execution backends: one protocol, three engines, one registry.

A backend is *how* a cleaning request is executed — on the stand-alone batch
pipeline, on the partitioned (simulated-cluster) driver, or by replaying the
table through the incremental streaming engine.  All backends take the same
:class:`CleaningRequest` and return the same unified
:class:`~repro.core.report.CleaningReport`, so a
:class:`~repro.session.session.CleaningSession` can swap them with one
builder call::

    session = CleaningSession.builder().with_backend("distributed", workers=4)...

New backends plug in through :func:`register_backend` (mirroring
:func:`repro.workloads.register_workload`) instead of editing this module.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

from repro.constraints.rules import Rule
from repro.core.config import MLNCleanConfig
from repro.core.pipeline import MLNClean
from repro.core.report import CleaningReport
from repro.dataset.table import Table
from repro.distributed.driver import DistributedMLNClean
from repro.errors.groundtruth import GroundTruth
from repro.obs import observe_run, span
from repro.registry import Registry
from repro.streaming.cleaner import StreamingMLNClean
from repro.streaming.source import TableStreamSource
from repro.streaming.window import WindowPolicy


@dataclass
class CleaningRequest:
    """Everything a backend needs to execute one cleaning run."""

    #: the dirty input table
    dirty: Table
    #: the integrity constraints governing it
    rules: list[Rule]
    #: the pipeline configuration
    config: MLNCleanConfig = field(default_factory=MLNCleanConfig)
    #: injected-error ledger; switches on accuracy instrumentation
    ground_truth: Optional[GroundTruth] = None
    #: explicit stage-name sequence (``None`` = the default Algorithm-1 order)
    stages: Optional[list[str]] = None
    #: error-detector stack (specs, see :mod:`repro.detect`); ``None`` runs
    #: without a detection phase
    detectors: Optional[list] = None


@runtime_checkable
class ExecutionBackend(Protocol):
    """The contract every execution backend implements."""

    #: registry name of the backend ("batch", "distributed", "streaming", ...)
    name: str

    def run(self, request: CleaningRequest) -> CleaningReport:
        """Execute the request and return the unified report."""
        ...  # pragma: no cover - protocol body


class BatchBackend:
    """The stand-alone Algorithm-1 pipeline (the paper's primary setting).

    ``parallelism=N`` (opt-in, default serial) cleans the independent
    Stage-I blocks in N worker processes; output is bit-identical to the
    serial run — blocks share no Stage-I state and the per-block outcomes
    are merged deterministically in block order.
    """

    name = "batch"

    def __init__(self, parallelism: int = 1):
        if parallelism < 1:
            raise ValueError("the batch backend needs parallelism >= 1")
        self.parallelism = parallelism

    def run(self, request: CleaningRequest) -> CleaningReport:
        if self.parallelism > 1 and request.detectors is not None:
            raise ValueError(
                "dirty-cell-scoped cleaning is serial-only: drop the "
                "detectors or run the batch backend with parallelism=1"
            )
        cleaner = MLNClean(
            request.config,
            stages=request.stages,
            parallelism=self.parallelism,
            detectors=request.detectors,
        )
        with span("backend:batch", parallelism=self.parallelism):
            report = cleaner.clean(
                request.dirty, request.rules, request.ground_truth
            )
        observe_run(self.name)
        return report


class DistributedBackend:
    """The partitioned pipeline of Section 6 on a simulated worker pool."""

    name = "distributed"

    def __init__(self, workers: int = 4):
        self.workers = workers

    def run(self, request: CleaningRequest) -> CleaningReport:
        if request.stages is not None:
            raise ValueError(
                "the distributed backend runs the fixed partition/learn/fuse/"
                "clean/gather sequence; custom stage orders are batch-only"
            )
        if request.detectors is not None:
            # The detection phase still runs (provenance + metrics), but the
            # partitioned driver always cleans full-scope, so a detection
            # that would prune anything is rejected rather than ignored.
            from repro.detect.run import run_detection

            detected = run_detection(
                request.dirty,
                request.rules,
                request.detectors,
                ground_truth=request.ground_truth,
                backend=self.name,
            )
            if not detected.covers(request.dirty):
                raise ValueError(
                    "the distributed backend cleans full-scope; dirty-cell-"
                    "scoped detectors are batch/streaming-only (use the "
                    "'all-cells' detector to keep detection metrics without "
                    "scoping)"
                )
        driver = DistributedMLNClean(workers=self.workers, config=request.config)
        with span("backend:distributed", workers=self.workers):
            report = driver.clean(
                request.dirty, request.rules, request.ground_truth
            )
        observe_run(self.name)
        return report.as_cleaning_report()


class StreamingBackend:
    """Full replay through the incremental engine in insert micro-batches.

    The dirty table is streamed in ascending-tid micro-batches of
    ``batch_size`` tuples; the engine maintains index, Stage I and Stage II
    incrementally.  The engine that executed the last :meth:`run` stays
    reachable as :attr:`engine`, so callers can keep feeding it deltas
    (late corrections, continuous arrivals) after the replay.
    """

    name = "streaming"

    def __init__(self, batch_size: int = 100, window: Optional[WindowPolicy] = None):
        if batch_size < 1:
            raise ValueError("the streaming backend needs batch_size >= 1")
        self.batch_size = batch_size
        self.window = window
        #: the engine of the most recent run (None before the first run)
        self.engine: Optional[StreamingMLNClean] = None

    def build_engine(self, request: CleaningRequest) -> StreamingMLNClean:
        """A fresh incremental engine for the request's rules and schema."""
        if request.stages is not None:
            raise ValueError(
                "the streaming backend re-cleans incrementally in the fixed "
                "Algorithm-1 stage order; custom stage orders are batch-only"
            )
        return StreamingMLNClean(
            request.rules,
            schema=request.dirty.attributes,
            config=request.config,
            window=self.window,
            detectors=request.detectors,
        )

    def run(self, request: CleaningRequest) -> CleaningReport:
        engine = self.build_engine(request)
        source = TableStreamSource(
            request.dirty, self.batch_size, request.ground_truth
        )
        with span(
            "backend:streaming", batch_size=self.batch_size
        ) as backend_span:
            engine.consume(source)
            backend_span.set(ticks=engine.batches_applied)
        self.engine = engine
        observe_run(self.name)
        return engine.report()


#: backend name → factory; factory options are backend-specific
BackendFactory = Callable[..., ExecutionBackend]

_BACKENDS: Registry[BackendFactory] = Registry("backend")
for _name, _factory in (
    ("batch", BatchBackend),
    ("distributed", DistributedBackend),
    ("streaming", StreamingBackend),
):
    _BACKENDS.register(_name, _factory)


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register a backend factory under ``name`` (case-insensitive).

    Re-registering the same factory is a no-op; rebinding a name to a
    different factory is an error.
    """
    _BACKENDS.register(name, factory)


def available_backends() -> list[str]:
    """All registered backend names, in registration order."""
    return _BACKENDS.names()


def get_backend(name: str, **options) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``.

    Keyword options are forwarded to the backend factory (e.g.
    ``workers=4`` for "distributed", ``batch_size=50`` for "streaming").
    """
    return _BACKENDS.get(name)(**options)
