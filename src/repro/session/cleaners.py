"""Cleaning algorithms behind one protocol: the `Cleaner` registry.

A *backend* answers "where does MLNClean execute" (batch / distributed /
streaming); a *cleaner* answers "which algorithm repairs the data".  Every
cleaner — MLNClean itself and the comparison baselines the paper evaluates
against — implements the same contract: take a
:class:`~repro.session.backends.CleaningRequest`, return the unified
:class:`~repro.core.report.CleaningReport`.  That makes the paper's
comparative experiments (MLNClean vs HoloClean vs qualitative repair) a pure
grid over registered names::

    session = CleaningSession.builder().with_cleaner("holoclean").build()
    report = session.run(dirty)           # same CleaningReport as MLNClean

Built-in cleaners:

* ``"mlnclean"``       — the paper's pipeline, delegating to any registered
  execution backend (``with_backend(...)`` configures it),
* ``"holoclean"``      — the HoloClean-style probabilistic baseline
  (:mod:`repro.baselines.holoclean`),
* ``"minimal-repair"`` — the qualitative majority-vote repairer
  (:mod:`repro.baselines.minimal_repair`),
* ``"factor-graph"``   — per-cell MAP repair over the untrained factor
  graph (:mod:`repro.baselines.factor_graph`), the no-training ablation of
  the HoloClean baseline.

Each baseline adapter folds the baseline's private result type into
``report.details``, so nothing of the original drill-down is lost.  New
algorithms plug in through :func:`register_cleaner`, mirroring
:func:`~repro.session.backends.register_backend`.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Optional, Protocol, Union, runtime_checkable

from repro.baselines.factor_graph import FactorGraphRepairer
from repro.baselines.holoclean import HoloCleanBaseline, HoloCleanConfig
from repro.baselines.minimal_repair import MinimalityRepairer
from repro.core.report import CleaningReport
from repro.registry import Registry
from repro.session.backends import (
    CleaningRequest,
    ExecutionBackend,
    get_backend,
)


@runtime_checkable
class Cleaner(Protocol):
    """The contract every cleaning algorithm implements."""

    #: registry name of the cleaner ("mlnclean", "holoclean", ...)
    name: str

    def run(self, request: CleaningRequest) -> CleaningReport:
        """Execute the request and return the unified report."""
        ...  # pragma: no cover - protocol body


def _reject_custom_stages(request: CleaningRequest, cleaner_name: str) -> None:
    """Baseline cleaners run fixed pipelines; stage orders are MLNClean-only."""
    if request.stages is not None:
        raise ValueError(
            f"the {cleaner_name} cleaner runs its own fixed pipeline; "
            f"custom stage orders apply to the mlnclean cleaner only"
        )


class MLNCleanCleaner:
    """The paper's pipeline, executed on any registered backend.

    This is the default cleaner of every session; ``with_backend(...)``
    configures which engine it delegates to.  Constructing it directly takes
    either a backend instance or a backend name plus its options::

        MLNCleanCleaner("distributed", workers=4)
    """

    name = "mlnclean"

    def __init__(
        self,
        backend: Union[ExecutionBackend, str] = "batch",
        **backend_options,
    ):
        if isinstance(backend, str):
            self.backend = get_backend(backend, **backend_options)
        else:
            if backend_options:
                raise ValueError(
                    "backend options only apply when the backend is given "
                    "by name"
                )
            self.backend = backend

    def run(self, request: CleaningRequest) -> CleaningReport:
        return self.backend.run(request)


class HoloCleanCleaner:
    """The HoloClean-style baseline as a registered cleaner.

    Options are the :class:`~repro.baselines.holoclean.HoloCleanConfig`
    fields (``max_candidates``, ``training_epochs``, ...) plus an optional
    ``detector``; the original :class:`HoloCleanReport` is preserved under
    ``report.details``.
    """

    name = "holoclean"

    def __init__(self, config: Optional[HoloCleanConfig] = None, detector=None, **overrides):
        if overrides:
            from dataclasses import replace

            config = replace(config or HoloCleanConfig(), **overrides)
        self.baseline = HoloCleanBaseline(config)
        self.detector = detector

    def run(self, request: CleaningRequest) -> CleaningReport:
        _reject_custom_stages(request, self.name)
        report = self.baseline.clean(
            request.dirty,
            request.rules,
            request.ground_truth,
            detector=_request_detector(request, self.detector, self.name),
        )
        return report.as_cleaning_report()


class MinimalRepairCleaner:
    """The qualitative minimality-based repairer as a registered cleaner."""

    name = "minimal-repair"

    def __init__(self):
        self.repairer = MinimalityRepairer()

    def run(self, request: CleaningRequest) -> CleaningReport:
        _reject_custom_stages(request, self.name)
        if request.detectors is not None:
            raise ValueError(
                "the minimal-repair cleaner has no detection phase; "
                "detector stacks apply to the mlnclean, holoclean and "
                "factor-graph cleaners"
            )
        report = self.repairer.clean(
            request.dirty, request.rules, request.ground_truth
        )
        return report.as_cleaning_report()


class FactorGraphCleaner:
    """The untrained factor-graph repairer as a registered cleaner.

    Options are forwarded to
    :class:`~repro.baselines.factor_graph.FactorGraphRepairer`
    (``max_candidates``, ``seed``, ``training_epochs``) plus an optional
    ``detector``.
    """

    name = "factor-graph"

    def __init__(self, detector=None, **options):
        self.repairer = FactorGraphRepairer(**options)
        self.detector = detector

    def run(self, request: CleaningRequest) -> CleaningReport:
        _reject_custom_stages(request, self.name)
        report = self.repairer.clean(
            request.dirty,
            request.rules,
            request.ground_truth,
            detector=_request_detector(request, self.detector, self.name),
        )
        return report.as_cleaning_report()


def _request_detector(request: CleaningRequest, own_detector, cleaner_name: str):
    """Fold a request's detector stack into a baseline's single detector.

    The HoloClean-style baselines take one detector object; a request stack
    collapses into a :class:`~repro.detect.builtin.UnionDetector`.  Setting
    both the cleaner's ``detector=`` option and the request's ``detectors``
    would silently shadow one of them, so that conflict raises instead.
    """
    if request.detectors is None:
        return own_detector
    if own_detector is not None:
        raise ValueError(
            f"the {cleaner_name} cleaner already has a detector= option; "
            f"drop it or drop the session's detector stack"
        )
    from repro.detect.builtin import UnionDetector
    from repro.detect.run import inject_ground_truth

    detector = UnionDetector(request.detectors)
    inject_ground_truth(detector, request.ground_truth)
    return detector


#: cleaner name → factory; factory options are cleaner-specific
CleanerFactory = Callable[..., Cleaner]

_CLEANERS: Registry[CleanerFactory] = Registry("cleaner")
for _name, _factory in (
    ("mlnclean", MLNCleanCleaner),
    ("holoclean", HoloCleanCleaner),
    ("minimal-repair", MinimalRepairCleaner),
    ("minimal_repair", MinimalRepairCleaner),
    ("factor-graph", FactorGraphCleaner),
    ("factor_graph", FactorGraphCleaner),
):
    _CLEANERS.register(_name, _factory)

#: cleaner name → display label used by the experiment tables
_DISPLAY_NAMES = {
    "mlnclean": "MLNClean",
    "holoclean": "HoloClean",
    "minimal-repair": "MinimalRepair",
    "factor-graph": "FactorGraph",
}


def register_cleaner(name: str, factory: CleanerFactory) -> None:
    """Register a cleaner factory under ``name`` (case-insensitive).

    Mirrors :func:`~repro.session.backends.register_backend`: re-registering
    the same factory is a no-op, rebinding a name to a different factory is
    an error.
    """
    _CLEANERS.register(name, factory)


def available_cleaners() -> list[str]:
    """Canonical cleaner names, in registration order.

    Aliases pointing at an already-listed factory ("minimal_repair" for
    "minimal-repair") are collapsed onto the first name registered for it.
    """
    names: list[str] = []
    seen: set = set()
    for name, factory in _CLEANERS.items():
        if factory in seen:
            continue
        seen.add(factory)
        names.append(name)
    return names


def cleaner_factory(name: str) -> CleanerFactory:
    """The factory registered under ``name`` (raises on unknown names)."""
    return _CLEANERS.get(name)


def get_cleaner(name: str, **options) -> Cleaner:
    """Instantiate the cleaner registered under ``name``.

    Keyword options are forwarded to the cleaner factory (e.g.
    ``backend="distributed", workers=4`` for "mlnclean",
    ``training_epochs=5`` for "holoclean").
    """
    return _CLEANERS.get(name)(**options)


def display_name(cleaner: Cleaner) -> str:
    """The system label experiment tables use for a cleaner instance.

    MLNClean on a non-default backend is labelled ``MLNClean[<backend>]``,
    matching the paper's table conventions; unregistered cleaners fall back
    to their ``name``.
    """
    label = _DISPLAY_NAMES.get(cleaner.name.lower(), cleaner.name)
    backend = getattr(cleaner, "backend", None)
    if cleaner.name == "mlnclean" and backend is not None and backend.name != "batch":
        return f"{label}[{backend.name}]"
    return label
