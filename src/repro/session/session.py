"""The `CleaningSession` facade: one entry point for every execution mode.

HoloClean-style session idiom (``load data → load rules → clean``) over the
pluggable internals of this package::

    from repro.session import CleaningSession

    session = (
        CleaningSession.builder()
        .with_rules("CT -> ST", "HN, PN -> CT")
        .with_config(abnormal_threshold=1)
        .with_backend("batch")
        .build()
    )
    session.load_table("hospital.csv")
    report = session.run()

The same session drives any registered backend (``"batch"``,
``"distributed"``, ``"streaming"``, or anything added through
:func:`~repro.session.backends.register_backend`) and any registered stage
sequence; the result is always the unified
:class:`~repro.core.report.CleaningReport`.
"""

from __future__ import annotations

import hashlib
import json
import re
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path
from typing import Optional, Union

from repro.constraints.parser import RuleParseError, parse_rule, rules_to_strings
from repro.constraints.rules import Rule
from repro.core.config import MLNCleanConfig
from repro.core.report import CleaningReport
from repro.dataset.io import read_csv
from repro.dataset.table import Table
from repro.errors.groundtruth import GroundTruth
from repro.obs import ensure_tracer, span
from repro.session.backends import CleaningRequest, ExecutionBackend
from repro.session.cleaners import (
    Cleaner,
    MLNCleanCleaner,
    cleaner_factory,
    get_cleaner,
)

#: anything :func:`load_rules` understands
RulesLike = Union[str, Path, Rule, Iterable[Union[str, Rule]]]
#: anything :func:`load_table` understands
TableLike = Union[str, Path, Table, Sequence[Mapping[str, str]]]


#: placeholder prefix marking rules whose name the collision-aware
#: renumbering in :func:`_extend_rules` still has to assign
_AUTONAME = "__autoname__"


def load_rules(source: RulesLike, prefix: str = "r") -> list[Rule]:
    """Load integrity constraints from strings, Rule objects, or a file.

    Accepted sources:

    * a :class:`Rule` instance (returned as a one-element list),
    * one rule string (``"CT -> ST"`` or ``"DC: ..."``),
    * a path to a text file with one rule per line (blank lines and ``#``
      comments are skipped) — recognised by an existing file or a
      ``.txt``/``.rules`` suffix,
    * any iterable mixing rule strings and Rule instances.

    Parsed rules are named ``<prefix>1``, ``<prefix>2``, ... by position,
    skipping names that explicitly named :class:`Rule` instances in the
    same source already claim; an explicit duplicate name raises (the MLN
    index keys blocks by rule name, so a collision would silently drop a
    constraint).
    """
    rules: list[Rule] = []
    _extend_rules(rules, source, prefix=prefix)
    return rules


def _load_raw(source: RulesLike) -> list[Rule]:
    """Load ``source`` with parsed rules carrying placeholder names."""
    if isinstance(source, Rule):
        return [source]
    if isinstance(source, Path):
        return _rules_from_file(source)
    if isinstance(source, str):
        path = Path(source)
        if path.suffix in (".txt", ".rules") or path.is_file():
            return _rules_from_file(path)
        return [parse_rule(source, name=f"{_AUTONAME}1")]
    return [
        item if isinstance(item, Rule) else parse_rule(item, name=f"{_AUTONAME}{i}")
        for i, item in enumerate(source, start=1)
    ]


#: ``name: rule`` prefix in rule files (the form :func:`rules_to_strings`
#: renders); "DC" is excluded so a bare denial constraint stays anonymous
_NAMED_RULE_LINE = re.compile(r"^(?P<name>[A-Za-z_][\w.-]*)\s*:\s*(?P<body>.+)$")


def _rules_from_file(path: Path) -> list[Rule]:
    """Parse a rule file, honouring optional ``name: rule`` prefixes.

    Blank lines and ``#`` comments are skipped; every parse error carries
    the 1-based line number and the offending text.  Lines may carry an
    explicit name (``r1: CT -> ST``); unnamed lines get positional names
    later.  Two lines claiming the same explicit name would previously both
    be renumbered silently — since the MLN index keys its blocks by rule
    name, that hid a dropped constraint, so a duplicate now raises instead.
    """
    if not path.is_file():
        raise FileNotFoundError(f"rule file {path} does not exist")
    numbered = [
        (lineno, line.strip())
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        )
    ]
    texts = [
        (lineno, line)
        for lineno, line in numbered
        if line and not line.startswith("#")
    ]
    rules: list[Rule] = []
    named: set[str] = set()
    for lineno, text in texts:
        match = _NAMED_RULE_LINE.match(text)
        try:
            if match is not None and match.group("name").lower() != "dc":
                name = match.group("name")
                if name in named:
                    raise ValueError(
                        f"duplicate rule name {name!r}: every rule needs a "
                        f"distinct name (the MLN index keys blocks by rule "
                        f"name, so a collision would silently drop a "
                        f"constraint)"
                    )
                named.add(name)
                rules.append(parse_rule(match.group("body"), name=name))
            else:
                rules.append(parse_rule(text, name=f"{_AUTONAME}{lineno}"))
        except RuleParseError as exc:
            raise RuleParseError(
                f"{path}:{lineno}: {exc} [line: {text!r}]"
            ) from exc
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc} [line: {text!r}]") from exc
    return rules


def load_table(
    source: TableLike,
    attributes: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
) -> Table:
    """Load a table from a :class:`Table`, dict rows, or a CSV path.

    * a :class:`Table` is passed through unchanged (``attributes``/``name``
      must then be omitted),
    * a ``str``/``Path`` is read as a CSV file with a header row,
    * a sequence of mappings becomes the rows of a new table.
    """
    if isinstance(source, Table):
        if attributes is not None or name is not None:
            raise ValueError(
                "attributes/name only apply when loading from CSV or records"
            )
        return source
    if isinstance(source, (str, Path)):
        return read_csv(source, attributes=attributes, name=name)
    return Table.from_records(
        source, attributes=attributes, name=name if name is not None else "T"
    )


class SessionBuilder:
    """Fluent construction of a :class:`CleaningSession`.

    Every ``with_*`` method returns the builder, so calls chain::

        session = (
            CleaningSession.builder()
            .with_rules("CT -> ST")
            .with_config(abnormal_threshold=10)
            .with_backend("streaming", batch_size=50)
            .build()
        )
    """

    def __init__(self) -> None:
        self._rules: list[Rule] = []
        self._config: Optional[MLNCleanConfig] = None
        self._config_overrides: dict[str, object] = {}
        self._backend_name: str = "batch"
        self._backend_options: dict[str, object] = {}
        self._backend_selected: bool = False
        self._cleaner_name: Optional[str] = None
        self._cleaner_options: dict[str, object] = {}
        self._stages: Optional[list[str]] = None
        self._detectors: Optional[list] = None
        self._table: Optional[Table] = None
        self._ground_truth: Optional[GroundTruth] = None

    def with_rules(self, *sources: RulesLike) -> "SessionBuilder":
        """Add rules from any mix of strings, Rule objects, and files."""
        for source in sources:
            _extend_rules(self._rules, source)
        return self

    def with_config(
        self, config: Optional[MLNCleanConfig] = None, **overrides
    ) -> "SessionBuilder":
        """Set the pipeline configuration (an instance, field overrides, or both)."""
        if config is not None:
            self._config = config
        self._config_overrides.update(overrides)
        return self

    def for_workload(self, dataset: str, **overrides) -> "SessionBuilder":
        """Start from the registered workload's recommended configuration."""
        from repro.workloads.registry import recommended_config

        self._config = recommended_config(dataset, **overrides)
        return self

    def with_backend(self, name: str, **options) -> "SessionBuilder":
        """Select the execution backend by registry name, with its options.

        Backend selection configures the (default) ``"mlnclean"`` cleaner —
        the baselines of :mod:`repro.session.cleaners` are stand-alone
        algorithms with no execution backend.
        """
        self._backend_name = name
        self._backend_options = dict(options)
        self._backend_selected = True
        return self

    def with_cleaner(self, name: str, **options) -> "SessionBuilder":
        """Select the cleaning algorithm by registry name, with its options.

        ``with_cleaner("holoclean")`` swaps the whole algorithm the same way
        ``with_backend("distributed")`` swaps MLNClean's execution engine;
        every cleaner returns the unified
        :class:`~repro.core.report.CleaningReport`.
        """
        self._cleaner_name = name
        self._cleaner_options = dict(options)
        return self

    def with_stages(self, *names: str) -> "SessionBuilder":
        """Override the stage sequence (registered stage names, in order)."""
        flat: list[str] = []
        for name in names:
            if isinstance(name, str):
                flat.append(name)
            else:
                flat.extend(name)
        self._stages = flat
        return self

    def with_detectors(self, *specs) -> "SessionBuilder":
        """Select the error-detection stack (detector specs, in order).

        Specs are registered names (``"violation"``), mappings
        (``{"name": "violation", "options": {"dc_file": ...}}``), or
        :class:`~repro.detect.Detector` instances — see :mod:`repro.detect`.
        Runs then detect first and clean dirty-scoped (exact-or-prune).
        """
        from repro.detect.base import resolve_detectors

        resolve_detectors(specs)  # validate eagerly: fail at build time
        self._detectors = list(specs)
        return self

    def with_table(
        self,
        source: TableLike,
        attributes: Optional[Sequence[str]] = None,
        name: Optional[str] = None,
    ) -> "SessionBuilder":
        """Attach the dirty table up front (same sources as ``load_table``)."""
        self._table = load_table(source, attributes=attributes, name=name)
        return self

    def with_ground_truth(self, ground_truth: GroundTruth) -> "SessionBuilder":
        """Attach an injected-error ledger: runs report repair accuracy."""
        self._ground_truth = ground_truth
        return self

    def build(self) -> "CleaningSession":
        """Construct the session (the cleaner and backend are instantiated here)."""
        config = self._config or MLNCleanConfig()
        if self._config_overrides:
            from dataclasses import replace

            config = replace(config, **self._config_overrides)
        return CleaningSession(
            rules=list(self._rules),
            config=config,
            cleaner=self._build_cleaner(),
            stages=self._stages,
            detectors=self._detectors,
            table=self._table,
            ground_truth=self._ground_truth,
        )

    def _build_cleaner(self) -> Cleaner:
        """Resolve the cleaner/backend selections into one cleaner instance."""
        if self._cleaner_name is None:
            return MLNCleanCleaner(self._backend_name, **self._backend_options)
        factory = cleaner_factory(self._cleaner_name)
        if factory is MLNCleanCleaner:
            options = dict(self._cleaner_options)
            if self._backend_selected:
                if "backend" in options:
                    raise ValueError(
                        "the execution backend was selected twice: drop "
                        "either with_backend(...) or the cleaner's "
                        "backend=... option"
                    )
                options["backend"] = self._backend_name
                options.update(self._backend_options)
            return factory(**options)
        if self._backend_selected:
            raise ValueError(
                f"the {self._cleaner_name!r} cleaner is a stand-alone "
                f"algorithm; with_backend(...) configures the 'mlnclean' "
                f"cleaner only"
            )
        return factory(**self._cleaner_options)


def _extend_rules(existing: list[Rule], source: RulesLike, prefix: str = "r") -> None:
    """Load ``source`` and append to ``existing`` with collision-free names.

    The MLN index keys its blocks by rule name, so two rules sharing a name
    would silently shadow each other.  Auto-named (parsed) rules therefore
    take the next free ``<prefix>N`` by position; an explicitly named
    :class:`Rule` that collides is rejected loudly.
    """
    taken = {rule.name for rule in existing}
    for rule in _load_raw(source):
        if rule.name.startswith(_AUTONAME):
            counter = len(existing) + 1
            while f"{prefix}{counter}" in taken:
                counter += 1
            rule.name = f"{prefix}{counter}"
        elif rule.name in taken:
            raise ValueError(
                f"duplicate rule name {rule.name!r}: the MLN index needs "
                f"every rule to have a distinct name"
            )
        taken.add(rule.name)
        existing.append(rule)


class CleaningSession:
    """One configured cleaning context: rules + config + backend + stages.

    Sessions are reusable: :meth:`run` can be called repeatedly, with the
    attached table or with an explicit one per call.  The attached state can
    be (re)loaded through :meth:`load_table` / :meth:`load_rules` /
    :meth:`attach_ground_truth` between runs.
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        config: Optional[MLNCleanConfig] = None,
        backend: Optional[Union[ExecutionBackend, str]] = None,
        stages: Optional[Sequence[str]] = None,
        table: Optional[Table] = None,
        ground_truth: Optional[GroundTruth] = None,
        cleaner: Optional[Union[Cleaner, str]] = None,
        detectors: Optional[Sequence] = None,
    ):
        self.rules: list[Rule] = list(rules) if rules is not None else []
        self.config = config or MLNCleanConfig()
        if cleaner is None:
            # the historic constructor shape: MLNClean on the given backend
            self.cleaner: Cleaner = MLNCleanCleaner(
                backend if backend is not None else "batch"
            )
        else:
            if backend is not None:
                raise ValueError(
                    "pass either cleaner or backend, not both: the backend "
                    "configures the default mlnclean cleaner (use "
                    "cleaner=MLNCleanCleaner(backend, ...) to combine them)"
                )
            self.cleaner = get_cleaner(cleaner) if isinstance(cleaner, str) else cleaner
        self.stages = list(stages) if stages is not None else None
        self.detectors = list(detectors) if detectors is not None else None
        self.table = table
        self.ground_truth = ground_truth
        #: the report of the most recent run (None before the first run)
        self.last_report: Optional[CleaningReport] = None
        #: the :class:`repro.obs.Tracer` the most recent run executed under
        #: (None when tracing was off — ``config.trace`` and no ambient
        #: tracer); its finished spans hold the run's full span tree
        self.last_trace = None

    @property
    def backend(self) -> Optional[ExecutionBackend]:
        """The execution backend of an MLNClean session (None otherwise)."""
        return getattr(self.cleaner, "backend", None)

    @staticmethod
    def builder() -> SessionBuilder:
        """Start a fluent :class:`SessionBuilder`."""
        return SessionBuilder()

    def fingerprint(self) -> str:
        """A stable hex digest of the session's cleaning behaviour.

        Covers everything the session itself pins down: the cleaner and (for
        MLNClean) backend names, the stage order, the attached rules, the
        full pipeline configuration, and the streaming backend's window
        policy when one is set.  Two sessions with equal fingerprints run
        the same algorithm under the same configuration — which is exactly
        the identity :class:`repro.service.pool.SessionPool` shards warm
        sessions by.  Execution-only knobs that are proven output-invariant
        (batch ``parallelism``, distributed ``workers``, streaming replay
        ``batch_size``) deliberately do not participate.

        Algorithm-specific options of non-MLNClean cleaners (e.g. HoloClean
        training epochs) are not visible from the session; callers routing
        on those fold them in on top (the service's shard keys do).
        """
        backend = self.backend
        payload = {
            "cleaner": self.cleaner.name,
            "backend": backend.name if backend is not None else None,
            "stages": list(self.stages) if self.stages is not None else None,
            "rules": rules_to_strings(self.rules),
            # identity_dict, not asdict: observability knobs (config.trace)
            # must not move a session to a different fingerprint/shard
            "config": self.config.identity_dict(),
            "window": _window_fingerprint(getattr(backend, "window", None)),
        }
        if self.detectors:
            # only when a stack is set, so detector-free sessions keep their
            # historic fingerprints (and snapshots stay restorable)
            from repro.detect.base import detector_specs_identity

            payload["detectors"] = detector_specs_identity(self.detectors)
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    # durable snapshots
    # ------------------------------------------------------------------
    def snapshot_envelope(self, state: dict) -> dict:
        """Wrap backend/engine state in an identity-stamped envelope.

        The envelope pins the session :meth:`fingerprint` so a snapshot can
        only ever be restored into a session that would run the exact same
        algorithm — the cluster's durability layer persists these and
        refuses mismatched restores via :meth:`check_snapshot`.
        """
        return {"fingerprint": self.fingerprint(), "state": state}

    def check_snapshot(self, envelope: dict) -> dict:
        """Validate an envelope against this session and return its state.

        Raises ``ValueError`` when the snapshot was taken by a session with
        a different fingerprint (different rules, config, cleaner or window
        policy) — restoring it would silently change cleaning behaviour.
        """
        fingerprint = envelope.get("fingerprint")
        if fingerprint != self.fingerprint():
            raise ValueError(
                f"snapshot fingerprint {fingerprint!r} does not match this "
                f"session's {self.fingerprint()!r}"
            )
        state = envelope.get("state")
        if not isinstance(state, dict):
            raise ValueError("snapshot envelope has no state payload")
        return state

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load_table(
        self,
        source: TableLike,
        attributes: Optional[Sequence[str]] = None,
        name: Optional[str] = None,
    ) -> Table:
        """Load and attach the dirty table (Table / dict rows / CSV path)."""
        self.table = load_table(source, attributes=attributes, name=name)
        return self.table

    def load_rules(self, *sources: RulesLike, replace: bool = False) -> list[Rule]:
        """Load and attach rules (strings / Rule objects / rule files).

        ``replace=True`` discards previously attached rules first.
        """
        if replace:
            self.rules = []
        for source in sources:
            _extend_rules(self.rules, source)
        return self.rules

    def attach_ground_truth(self, ground_truth: GroundTruth) -> None:
        """Attach the injected-error ledger; later runs report accuracy."""
        self.ground_truth = ground_truth

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        table: Optional[TableLike] = None,
        rules: Optional[RulesLike] = None,
        ground_truth: Optional[GroundTruth] = None,
    ) -> CleaningReport:
        """Execute one cleaning run on the configured backend.

        Arguments default to the session's attached state; passing them
        explicitly neither requires nor modifies that state.
        """
        dirty = self.table if table is None else load_table(table)
        if dirty is None:
            raise ValueError(
                "no table to clean: call load_table() or pass one to run()"
            )
        run_rules = self.rules if rules is None else load_rules(rules)
        if not run_rules:
            raise ValueError(
                "no integrity constraints: call load_rules() or pass rules to run()"
            )
        truth = ground_truth if ground_truth is not None else self.ground_truth
        request = CleaningRequest(
            dirty=dirty,
            rules=list(run_rules),
            config=self.config,
            ground_truth=truth,
            stages=list(self.stages) if self.stages is not None else None,
            detectors=list(self.detectors) if self.detectors is not None else None,
        )
        backend = self.backend
        with ensure_tracer(self.config.trace) as tracer:
            self.last_trace = tracer
            with span(
                "session.run",
                cleaner=self.cleaner.name,
                backend=backend.name if backend is not None else None,
                tuples=len(dirty),
                rules=len(run_rules),
            ):
                self.last_report = self.cleaner.run(request)
        return self.last_report

    #: HoloClean-style alias: ``session.clean()`` == ``session.run()``
    clean = run

    def describe(self) -> str:
        """One line summarising the session's configuration."""
        stages = "default" if self.stages is None else "→".join(self.stages)
        backend = self.backend
        engine = f"cleaner={self.cleaner.name}"
        if backend is not None:
            engine += f", backend={backend.name}"
        return (
            f"CleaningSession({engine}, "
            f"rules={len(self.rules)}, stages={stages}, "
            f"tau={self.config.abnormal_threshold}, "
            f"metric={self.config.distance_metric})"
        )


def _window_fingerprint(window: Optional[object]) -> Optional[dict]:
    """The JSON-safe identity of a streaming window policy (None = unbounded).

    Window policies change cleaning *output* (eviction removes tuples), so
    they belong in the fingerprint; only their simple constructor state
    participates, not their runtime bookkeeping.
    """
    if window is None:
        return None
    state = {
        key: value
        for key, value in vars(window).items()
        if not key.startswith("_") and isinstance(value, (int, float, str, bool))
    }
    return {"kind": type(window).__name__, **state}


#: short alias used throughout the docs: ``Session.builder()...``
Session = CleaningSession
