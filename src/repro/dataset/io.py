"""CSV input/output for :class:`~repro.dataset.table.Table`.

The real datasets of the paper (HAI, CAR, TPC-H) are CSV files; the synthetic
workload generators of :mod:`repro.workloads` can also round-trip through CSV
so experiments are repeatable from files on disk.
"""

from __future__ import annotations

import csv
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Optional, Union

from repro.dataset.table import Table

PathLike = Union[str, Path]


def read_csv(
    path: PathLike,
    attributes: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
    delimiter: str = ",",
) -> Table:
    """Load a table from a CSV file with a header row.

    ``attributes`` restricts (and reorders) the loaded columns; by default all
    columns of the file are loaded in file order.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None:
            raise ValueError(f"{path} has no header row")
        columns = list(attributes) if attributes is not None else list(reader.fieldnames)
        missing = [c for c in columns if c not in reader.fieldnames]
        if missing:
            raise KeyError(f"{path} is missing columns {missing!r}")
        records = [{c: (row[c] or "") for c in columns} for row in reader]
    table_name = name if name is not None else path.stem
    if not records:
        table = Table.from_records([], attributes=columns, name=table_name) \
            if columns else None
        if table is None:
            raise ValueError(f"{path} is empty and no attributes were given")
        return table
    return Table.from_records(records, attributes=columns, name=table_name)


def write_csv(table: Table, path: PathLike, delimiter: str = ",") -> None:
    """Write a table to CSV with a header row (tuple ids are not persisted)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(
            handle, fieldnames=table.schema.attributes, delimiter=delimiter
        )
        writer.writeheader()
        for row in table:
            writer.writerow(row.as_dict())


def table_from_records(
    records: Sequence[Mapping[str, str]],
    attributes: Optional[Sequence[str]] = None,
    name: str = "T",
) -> Table:
    """Convenience wrapper around :meth:`Table.from_records`."""
    return Table.from_records(records, attributes=attributes, name=name)
