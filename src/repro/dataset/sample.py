"""The worked example of the paper: Table 1 and the rules r1-r3.

The sample hospital-information dataset is used throughout the paper to
illustrate the MLN index (Figure 2), the AGP merge of the abnormal group G12
into G11, the reliability-score computation inside group G13 (Example 2 /
Figure 3), the three clean data versions (Figure 4), and the FSCR fusion of
tuple t3 (Example 3).  The integration tests replay those examples against
this fixture.
"""

from __future__ import annotations

from repro.constraints.rules import (
    ConditionalFunctionalDependency,
    DenialConstraint,
    FunctionalDependency,
    Rule,
)
from repro.dataset.table import Table

#: Attribute names of the sample relation (Table 1 of the paper).
SAMPLE_ATTRIBUTES = ["HN", "CT", "ST", "PN"]

#: The six sampled tuples of Table 1, errors included.
SAMPLE_RECORDS = [
    {"HN": "ALABAMA", "CT": "DOTHAN", "ST": "AL", "PN": "3347938701"},
    {"HN": "ALABAMA", "CT": "DOTH", "ST": "AL", "PN": "3347938701"},
    {"HN": "ELIZA", "CT": "DOTHAN", "ST": "AL", "PN": "2567638410"},
    {"HN": "ELIZA", "CT": "BOAZ", "ST": "AK", "PN": "2567688400"},
    {"HN": "ELIZA", "CT": "BOAZ", "ST": "AL", "PN": "2567688400"},
    {"HN": "ELIZA", "CT": "BOAZ", "ST": "AL", "PN": "2567688400"},
]

#: The intended clean version of each sampled tuple, for the integration tests.
SAMPLE_CLEAN_RECORDS = [
    {"HN": "ALABAMA", "CT": "DOTHAN", "ST": "AL", "PN": "3347938701"},
    {"HN": "ALABAMA", "CT": "DOTHAN", "ST": "AL", "PN": "3347938701"},
    {"HN": "ELIZA", "CT": "BOAZ", "ST": "AL", "PN": "2567688400"},
    {"HN": "ELIZA", "CT": "BOAZ", "ST": "AL", "PN": "2567688400"},
    {"HN": "ELIZA", "CT": "BOAZ", "ST": "AL", "PN": "2567688400"},
    {"HN": "ELIZA", "CT": "BOAZ", "ST": "AL", "PN": "2567688400"},
]


def sample_hospital_table(name: str = "hospital-sample") -> Table:
    """The dirty hospital sample of Table 1 as a :class:`Table` (tids 0-5)."""
    return Table.from_records(SAMPLE_RECORDS, attributes=SAMPLE_ATTRIBUTES, name=name)


def sample_hospital_clean_table(name: str = "hospital-sample-clean") -> Table:
    """The ground-truth clean version of the sample (duplicates retained)."""
    return Table.from_records(
        SAMPLE_CLEAN_RECORDS, attributes=SAMPLE_ATTRIBUTES, name=name
    )


def sample_hospital_rules() -> list[Rule]:
    """The three integrity constraints r1, r2, r3 of Example 1.

    * r1 (FD):  CT -> ST
    * r2 (DC):  no two tuples share a phone number but differ on state
    * r3 (CFD): HN = "ELIZA" and CT = "BOAZ" imply PN = "2567688400"
    """
    r1 = FunctionalDependency(["CT"], ["ST"], name="r1")
    r2 = DenialConstraint.pairwise_equality_implies_equality(
        equal_attribute="PN", implied_attribute="ST", name="r2"
    )
    r3 = ConditionalFunctionalDependency(
        conditions={"HN": "ELIZA", "CT": "BOAZ"},
        consequents={"PN": "2567688400"},
        name="r3",
    )
    return [r1, r2, r3]
