"""In-memory relational table with stable tuple identifiers.

This is the dirty relation ``T`` of the paper.  Cleaning algorithms address
individual cells as ``(tid, attribute)`` pairs, so :class:`Table` keeps a
stable integer tuple id per row that survives copying and value updates; the
ground-truth ledger, the error injector, and the repair-accuracy metrics all
key on those cell addresses.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass
from typing import Callable, Optional

from repro.dataset.domain import Domain
from repro.dataset.schema import Schema


@dataclass(frozen=True)
class Cell:
    """Address of a single attribute value: tuple id + attribute name."""

    tid: int
    attribute: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"t{self.tid}.[{self.attribute}]"


class Row:
    """One tuple of the relation.

    A :class:`Row` behaves like a read-mostly mapping from attribute name to
    string value.  Mutation goes through :meth:`set` so the owning table can
    keep derived state (domains) consistent when required.
    """

    __slots__ = ("tid", "_values")

    def __init__(self, tid: int, values: Mapping[str, str]):
        self.tid = tid
        self._values = dict(values)

    def __getitem__(self, attribute: str) -> str:
        return self._values[attribute]

    def get(self, attribute: str, default: Optional[str] = None) -> Optional[str]:
        return self._values.get(attribute, default)

    def set(self, attribute: str, value: str) -> None:
        if attribute not in self._values:
            raise KeyError(f"attribute {attribute!r} not in row schema")
        self._values[attribute] = value

    def as_dict(self) -> dict[str, str]:
        """A copy of the row's values keyed by attribute."""
        return dict(self._values)

    def values_for(self, attributes: Sequence[str]) -> tuple[str, ...]:
        """Values of the given attributes, in the given order."""
        return tuple(self._values[a] for a in attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._values.items())))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Row(tid={self.tid}, {self._values!r})"


class Table:
    """A relation: a schema plus an ordered collection of rows.

    Rows keep stable tuple ids.  ``Table`` is the unit that MLNClean receives
    (a dirty table), produces (a clean table), and that the metrics compare
    against the ground truth.
    """

    def __init__(self, schema: Schema, name: str = "T"):
        self.schema = schema
        self.name = name
        self._rows: dict[int, Row] = {}
        self._next_tid = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(self, values: Mapping[str, str], tid: Optional[int] = None) -> Row:
        """Append a tuple; returns the created :class:`Row`.

        If ``tid`` is given it must be unused; otherwise the next free id is
        assigned.  Missing attributes are rejected so every row always covers
        the full schema.
        """
        missing = [a for a in self.schema if a not in values]
        if missing:
            raise KeyError(f"row is missing attributes {missing!r}")
        extra = [a for a in values if a not in self.schema]
        if extra:
            raise KeyError(f"row has attributes outside the schema: {extra!r}")
        if tid is None:
            tid = self._next_tid
        elif tid in self._rows:
            raise ValueError(f"tuple id {tid} already present")
        row = Row(tid, {a: str(values[a]) for a in self.schema})
        self._rows[tid] = row
        self._next_tid = max(self._next_tid, tid + 1)
        return row

    def extend(self, records: Iterable[Mapping[str, str]]) -> None:
        """Append many records."""
        for record in records:
            self.append(record)

    @classmethod
    def from_records(
        cls,
        records: Sequence[Mapping[str, str]],
        attributes: Optional[Sequence[str]] = None,
        name: str = "T",
    ) -> "Table":
        """Build a table from a list of dicts.

        When ``attributes`` is omitted the schema is taken from the first
        record's keys (in insertion order).
        """
        if attributes is None:
            if not records:
                raise ValueError("cannot infer a schema from an empty record list")
            attributes = list(records[0].keys())
        table = cls(Schema(attributes), name=name)
        table.extend(records)
        return table

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def tids(self) -> list[int]:
        """Tuple ids in insertion order."""
        return list(self._rows.keys())

    @property
    def next_tid(self) -> int:
        """The id :meth:`append` would auto-assign to the next tuple.

        Monotone over the table's lifetime (removals do not release ids), so
        callers can pre-validate batched inserts against it.
        """
        return self._next_tid

    @property
    def rows(self) -> list[Row]:
        """Rows in insertion order."""
        return list(self._rows.values())

    def reserve_tids(self, next_tid: int) -> None:
        """Advance the tid allocator so ids below ``next_tid`` are never
        auto-assigned again (snapshot restore re-arms the allocator of a
        table whose highest-id rows were already evicted)."""
        self._next_tid = max(self._next_tid, int(next_tid))

    @property
    def attributes(self) -> list[str]:
        """Attribute names of the schema."""
        return self.schema.attributes

    def row(self, tid: int) -> Row:
        """The row with tuple id ``tid``; raises ``KeyError`` if absent."""
        return self._rows[tid]

    def has_tid(self, tid: int) -> bool:
        return tid in self._rows

    def value(self, tid: int, attribute: str) -> str:
        """Value of one cell."""
        return self._rows[tid][attribute]

    def cell_value(self, cell: Cell) -> str:
        """Value at a :class:`Cell` address."""
        return self.value(cell.tid, cell.attribute)

    def set_value(self, tid: int, attribute: str, value: str) -> None:
        """Overwrite one cell."""
        if attribute not in self.schema:
            raise KeyError(f"attribute {attribute!r} not in schema")
        self._rows[tid].set(attribute, str(value))

    def set_cell(self, cell: Cell, value: str) -> None:
        self.set_value(cell.tid, cell.attribute, value)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows.values())

    def __contains__(self, tid: object) -> bool:
        return tid in self._rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, {len(self)} rows, {self.schema.arity} attrs)"

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def cell_count(self) -> int:
        """Total number of attribute values (|T| x arity)."""
        return len(self._rows) * self.schema.arity

    def cells(self) -> Iterator[Cell]:
        """Iterate over every cell address."""
        for tid in self._rows:
            for attribute in self.schema:
                yield Cell(tid, attribute)

    def column(self, attribute: str) -> list[str]:
        """All values of one attribute, in row order."""
        if attribute not in self.schema:
            raise KeyError(f"attribute {attribute!r} not in schema")
        return [row[attribute] for row in self._rows.values()]

    def domain(self, attribute: str) -> Domain:
        """The observed domain of one attribute."""
        domain = Domain(attribute)
        for value in self.column(attribute):
            domain.add(value)
        return domain

    def domains(self) -> dict[str, Domain]:
        """Observed domains of every attribute."""
        return {attribute: self.domain(attribute) for attribute in self.schema}

    def records(self) -> list[dict[str, str]]:
        """All rows as plain dicts (copies)."""
        return [row.as_dict() for row in self._rows.values()]

    def projection(self, attributes: Sequence[str]) -> list[tuple[str, ...]]:
        """Project every row onto the given attributes."""
        self.schema.validate_attributes(attributes)
        return [row.values_for(attributes) for row in self._rows.values()]

    # ------------------------------------------------------------------
    # copying / mutation helpers
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Table":
        """A deep copy preserving tuple ids."""
        cloned = Table(self.schema, name=name or self.name)
        for tid, row in self._rows.items():
            cloned.append(row.as_dict(), tid=tid)
        return cloned

    def remove(self, tid: int) -> None:
        """Remove the tuple with id ``tid``."""
        del self._rows[tid]

    def remove_many(self, tids: Iterable[int]) -> None:
        for tid in list(tids):
            self.remove(tid)

    def filter(self, predicate: Callable[[Row], bool], name: str = "filtered") -> "Table":
        """A new table containing the rows satisfying ``predicate`` (ids kept)."""
        result = Table(self.schema, name=name)
        for tid, row in self._rows.items():
            if predicate(row):
                result.append(row.as_dict(), tid=tid)
        return result

    def subset(self, tids: Sequence[int], name: str = "subset") -> "Table":
        """A new table containing exactly the given tuple ids (ids kept)."""
        result = Table(self.schema, name=name)
        for tid in tids:
            result.append(self._rows[tid].as_dict(), tid=tid)
        return result

    def __deepcopy__(self, memo: dict) -> "Table":  # pragma: no cover - delegation
        cloned = self.copy()
        memo[id(self)] = cloned
        return cloned

    def equals(self, other: "Table") -> bool:
        """True if both tables have identical schemas, tids and values."""
        if self.schema != other.schema or set(self.tids) != set(other.tids):
            return False
        return all(
            self._rows[tid].as_dict() == other._rows[tid].as_dict()
            for tid in self._rows
        )

    def diff_cells(self, other: "Table") -> list[Cell]:
        """Cells whose values differ between two tables with the same tids."""
        if set(self.tids) != set(other.tids):
            raise ValueError("tables have different tuple ids")
        changed: list[Cell] = []
        for tid in self._rows:
            for attribute in self.schema:
                if self.value(tid, attribute) != other.value(tid, attribute):
                    changed.append(Cell(tid, attribute))
        return changed

    def duplicate_groups(self, interner=None) -> list[list[int]]:
        """Groups of tuple ids whose rows are exact value duplicates.

        Only groups with at least two members are returned; MLNClean removes
        the extra members at the very end of the pipeline.  ``interner`` (a
        ``str -> str`` canonicaliser, e.g. ``DistanceEngine.intern``) lets
        repeated values hash and compare by identity; it never changes which
        rows count as duplicates.
        """
        by_values: dict[tuple[str, ...], list[int]] = {}
        attributes = self.schema.attributes
        for tid, row in self._rows.items():
            key = row.values_for(attributes)
            if interner is not None:
                key = tuple(interner(value) for value in key)
            by_values.setdefault(key, []).append(tid)
        return [tids for tids in by_values.values() if len(tids) > 1]

    def to_pretty_string(self, max_rows: int = 20) -> str:
        """A fixed-width rendering, handy for examples and debugging."""
        attrs = self.schema.attributes
        header = ["TID", *attrs]
        rows = [[str(tid), *(self._rows[tid][a] for a in attrs)] for tid in self.tids]
        shown = rows[:max_rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in shown)) if shown else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            "  ".join(header[i].ljust(widths[i]) for i in range(len(header))),
            "  ".join("-" * widths[i] for i in range(len(header))),
        ]
        lines.extend(
            "  ".join(r[i].ljust(widths[i]) for i in range(len(header))) for r in shown
        )
        if len(rows) > max_rows:
            lines.append(f"... ({len(rows) - max_rows} more rows)")
        return "\n".join(lines)
