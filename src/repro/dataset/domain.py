"""Attribute domains.

The paper writes ``ti.[Aj] ∈ C(Ai)`` where ``C(Ai)`` is the domain of
attribute ``Ai`` (Section 3).  Domains matter in two places of the
reproduction:

* the replacement-error injector draws a wrong value "from the same domain"
  (Section 7.1), and
* the HoloClean baseline prunes repair candidates to domain values that
  co-occur with the tuple's context.

A :class:`Domain` is an ordered set of distinct values observed for one
attribute, with frequency counts so callers can sample proportionally to the
empirical distribution or uniformly.
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Iterable, Iterator
from typing import Optional


class Domain:
    """The set of values an attribute takes, with observation counts."""

    def __init__(self, attribute: str, values: Optional[Iterable[str]] = None):
        self.attribute = attribute
        self._counts: Counter = Counter()
        self._order: list[str] = []
        if values is not None:
            for value in values:
                self.add(value)

    def add(self, value: str, count: int = 1) -> None:
        """Record ``count`` observations of ``value``."""
        if count <= 0:
            raise ValueError("count must be positive")
        if value not in self._counts:
            self._order.append(value)
        self._counts[value] += count

    def discard(self, value: str) -> None:
        """Remove ``value`` from the domain entirely (all observations)."""
        if value in self._counts:
            del self._counts[value]
            self._order.remove(value)

    def count(self, value: str) -> int:
        """Number of recorded observations of ``value`` (0 if absent)."""
        return self._counts.get(value, 0)

    def frequency(self, value: str) -> float:
        """Relative frequency of ``value`` among all observations."""
        total = self.total_observations
        if total == 0:
            return 0.0
        return self._counts.get(value, 0) / total

    @property
    def values(self) -> list[str]:
        """Distinct values in first-seen order."""
        return list(self._order)

    @property
    def size(self) -> int:
        """Number of distinct values."""
        return len(self._order)

    @property
    def total_observations(self) -> int:
        """Total number of observations recorded across all values."""
        return sum(self._counts.values())

    def __contains__(self, value: object) -> bool:
        return value in self._counts

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[str]:
        return iter(self._order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Domain({self.attribute!r}, size={self.size})"

    def sample(self, rng: random.Random, exclude: Optional[str] = None) -> str:
        """Sample a domain value uniformly, optionally excluding one value.

        Used by the replacement-error injector: the paper replaces a value
        "with another value from the same domain".
        """
        candidates = [v for v in self._order if v != exclude]
        if not candidates:
            raise ValueError(
                f"domain of {self.attribute!r} has no value other than {exclude!r}"
            )
        return rng.choice(candidates)

    def sample_weighted(
        self, rng: random.Random, exclude: Optional[str] = None
    ) -> str:
        """Sample a domain value proportionally to its observation count."""
        candidates = [(v, c) for v, c in self._counts.items() if v != exclude]
        if not candidates:
            raise ValueError(
                f"domain of {self.attribute!r} has no value other than {exclude!r}"
            )
        values, weights = zip(*candidates)
        return rng.choices(list(values), weights=list(weights), k=1)[0]

    def most_common(self, n: Optional[int] = None) -> list[tuple[str, int]]:
        """Values sorted by observation count, most frequent first."""
        return self._counts.most_common(n)

    def merge(self, other: "Domain") -> "Domain":
        """Return a new domain with the observations of both domains."""
        merged = Domain(self.attribute)
        for value in self._order:
            merged.add(value, self._counts[value])
        for value in other._order:
            merged.add(value, other._counts[value])
        return merged
