"""Relational dataset substrate used throughout the MLNClean reproduction.

The paper operates on a single dirty relation ``T`` with attributes
``A1 .. Ad`` and tuples ``t1 .. tn`` (Section 3).  This package provides the
in-memory representation of such a relation together with schema metadata,
attribute domains, cell addressing, CSV I/O, and the worked sample dataset of
Table 1 in the paper.
"""

from repro.dataset.domain import Domain
from repro.dataset.schema import Schema
from repro.dataset.table import Cell, Row, Table
from repro.dataset.io import read_csv, write_csv, table_from_records

# NOTE: repro.dataset.sample (the paper's Table-1 fixture) is intentionally not
# imported here: it depends on repro.constraints, which itself depends on this
# package, and importing it eagerly would create an import cycle.  Import it
# directly as ``from repro.dataset.sample import sample_hospital_table``.

__all__ = [
    "Cell",
    "Domain",
    "Row",
    "Schema",
    "Table",
    "read_csv",
    "write_csv",
    "table_from_records",
]
