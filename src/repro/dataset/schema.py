"""Relation schema: an ordered list of attribute names.

MLNClean treats every value as a string (the distance metrics, typo model and
MLN grounding are all string based), so the schema only tracks attribute names
and positions, not types.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence


class Schema:
    """Ordered collection of attribute names of a relation."""

    def __init__(self, attributes: Sequence[str]):
        attrs = list(attributes)
        if not attrs:
            raise ValueError("a schema needs at least one attribute")
        seen: set[str] = set()
        for name in attrs:
            if not name:
                raise ValueError("attribute names must be non-empty")
            if name in seen:
                raise ValueError(f"duplicate attribute name: {name!r}")
            seen.add(name)
        self._attributes = attrs
        self._positions = {name: i for i, name in enumerate(attrs)}

    @property
    def attributes(self) -> list[str]:
        """Attribute names in declaration order."""
        return list(self._attributes)

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._attributes)

    def position(self, attribute: str) -> int:
        """Zero-based position of ``attribute``; raises ``KeyError`` if absent."""
        return self._positions[attribute]

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._positions

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(tuple(self._attributes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema({self._attributes!r})"

    def validate_attributes(self, attributes: Iterable[str]) -> None:
        """Raise ``KeyError`` if any of ``attributes`` is not in the schema."""
        for attribute in attributes:
            if attribute not in self._positions:
                raise KeyError(
                    f"attribute {attribute!r} is not part of the schema "
                    f"{self._attributes!r}"
                )

    def project(self, attributes: Sequence[str]) -> "Schema":
        """Return a schema restricted to ``attributes`` (kept in given order)."""
        self.validate_attributes(attributes)
        return Schema(list(attributes))
