"""repro.faults: seeded, deterministic fault injection for the cluster.

A :class:`FaultPlan` (pure data, JSON-round-trippable) schedules faults —
"fail the 3rd WAL fsync on shard X", "drop the response of the Nth
router→worker call", "stall heartbeats for T ticks", "corrupt the next
snapshot write" — and the process-global :data:`INJECTOR` fires them at
named injection points threaded through :mod:`repro.cluster` and
:mod:`repro.service`.  With no plan active every point is a single
attribute read; chaos costs nothing when it is off.

Activate a plan in-process (``INJECTOR.activate(plan)``), via the
``--fault-plan`` CLI flag of ``python -m repro.cluster``, or by exporting
``REPRO_FAULT_PLAN`` (a path or inline JSON) before spawning a worker —
the import below arms subprocesses automatically.

The hardening this layer exercises — request deadlines, the router's
per-worker circuit breaker, idempotent delta application, the WAL degraded
mode and poison-job quarantine — lives with the code it hardens; the README
"Fault tolerance" section maps fault → detection → behavior → recovery.
"""

from __future__ import annotations

from repro.faults.injector import (
    INJECTOR,
    PLAN_ENV_VAR,
    Decision,
    FaultInjector,
    InjectedConnectionError,
    InjectedCrash,
    InjectedFault,
    InjectedIOError,
    activate_from_env,
)
from repro.faults.plan import ACTIONS, FaultPlan, FaultRule

__all__ = [
    "ACTIONS",
    "Decision",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "INJECTOR",
    "InjectedConnectionError",
    "InjectedCrash",
    "InjectedFault",
    "InjectedIOError",
    "PLAN_ENV_VAR",
    "activate_from_env",
]

# subprocess workers opt in through the environment; nothing happens unless
# REPRO_FAULT_PLAN is set (and a set-but-broken plan fails loudly here)
activate_from_env()
