"""Pure-data fault plans: *what* to break, *where*, and *when*.

A :class:`FaultPlan` is the schedule the chaos tests and the ``chaos-smoke``
CI driver feed into the :class:`~repro.faults.injector.FaultInjector`: a
seed plus an ordered list of :class:`FaultRule`\\ s.  Plans are plain data —
JSON-round-trippable byte-for-byte (:meth:`FaultPlan.to_json` /
:meth:`FaultPlan.from_json`) — so one schedule can be written to an
artifact, shipped to subprocess workers through the ``REPRO_FAULT_PLAN``
environment variable, and replayed deterministically later.

A rule names an injection *point* (a dotted string a call site declares,
e.g. ``"wal.fsync"``), an *action*, optional attribute filters, and a
firing window over the rule's *eligible hits* — the calls that reach its
point and pass its filters.  Examples, in plan form::

    fail the 3rd WAL fsync on shard ab12…      → point="wal.fsync",
        action="fail", match={"shard": "ab12"}, nth=3
    drop the response of the 2nd router→worker delta call
        → point="httpclient.request", action="drop",
          match={"path": "/deltas"}, nth=2
    stall worker heartbeats for 6 ticks        → point="worker.heartbeat",
        action="stall", nth=1, times=6
    corrupt the next snapshot write            → point="snapshot.write",
        action="corrupt", nth=1

Matching is exact string equality, except that a rule value may be a
*prefix* of the hit's value — shard fingerprints and paths are long, plans
should not have to spell them out.  ``probability`` gates each eligible hit
on a coin flip drawn from a per-rule RNG seeded by ``plan.seed`` and the
rule's index, so two injectors fed the same plan make identical decisions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

#: everything a rule may do at its injection point; what each action means
#: is defined by the call site (see the injector's module docstring)
ACTIONS = ("fail", "delay", "drop", "duplicate", "stall", "corrupt")


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault (see the module docstring for the vocabulary)."""

    point: str
    action: str = "fail"
    #: attribute filters: every key must match the hit's attribute exactly,
    #: or be a prefix of it (fingerprints/paths are long)
    match: dict = field(default_factory=dict)
    #: the first eligible hit that fires, 1-based
    nth: int = 1
    #: how many consecutive eligible hits fire from ``nth`` on (None = all)
    times: Optional[int] = 1
    #: fire every Nth eligible hit instead of a contiguous [nth, nth+times) run
    every: Optional[int] = None
    #: gate each would-be firing on a seeded coin flip (None = always)
    probability: Optional[float] = None
    #: sleep duration of the ``delay`` action, seconds
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.point or not isinstance(self.point, str):
            raise ValueError("a fault rule needs a non-empty 'point'")
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; pick one of {ACTIONS}"
            )
        if not isinstance(self.match, dict):
            raise ValueError("'match' must be a {attribute: value} mapping")
        if self.nth < 1:
            raise ValueError("'nth' is 1-based and must be >= 1")
        if self.times is not None and self.times < 1:
            raise ValueError("'times' must be >= 1 (or None for unlimited)")
        if self.every is not None and self.every < 1:
            raise ValueError("'every' must be >= 1")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError("'probability' must be within [0, 1]")
        if self.delay_s < 0:
            raise ValueError("'delay_s' must be >= 0")

    def fires_on(self, hit: int) -> bool:
        """Whether eligible hit number ``hit`` (1-based) is in the window.

        (The probability gate is the injector's job — it owns the RNG.)
        """
        if self.every is not None:
            return hit % self.every == 0
        if hit < self.nth:
            return False
        return self.times is None or hit < self.nth + self.times

    def to_dict(self) -> dict:
        """The rule as plain JSON data, defaults omitted."""
        data: dict = {"point": self.point, "action": self.action}
        if self.match:
            data["match"] = dict(self.match)
        if self.nth != 1:
            data["nth"] = self.nth
        if self.times != 1:
            data["times"] = self.times
        if self.every is not None:
            data["every"] = self.every
        if self.probability is not None:
            data["probability"] = self.probability
        if self.delay_s:
            data["delay_s"] = self.delay_s
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        if not isinstance(data, dict):
            raise ValueError(f"a fault rule must be a JSON object, got {data!r}")
        known = {
            "point", "action", "match", "nth", "times", "every",
            "probability", "delay_s",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault-rule fields {sorted(unknown)}")
        return cls(
            point=data.get("point", ""),
            action=data.get("action", "fail"),
            match=dict(data.get("match") or {}),
            nth=int(data.get("nth", 1)),
            times=None if data.get("times", 1) is None else int(data.get("times", 1)),
            every=None if data.get("every") is None else int(data["every"]),
            probability=(
                None if data.get("probability") is None
                else float(data["probability"])
            ),
            delay_s=float(data.get("delay_s", 0.0)),
        )

    def matches(self, attrs: dict) -> bool:
        """Exact-or-prefix match of every filter against the hit's attributes."""
        for key, wanted in self.match.items():
            actual = attrs.get(key)
            if actual is None:
                return False
            actual, wanted = str(actual), str(wanted)
            if actual != wanted and not actual.startswith(wanted):
                return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered rule list — one deterministic fault schedule."""

    seed: int = 0
    rules: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise ValueError(f"plans hold FaultRule objects, got {rule!r}")

    def to_json(self) -> str:
        """Canonical JSON; byte-stable across round trips."""
        return json.dumps(
            {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]},
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError("a fault plan must be a JSON object")
        raw_rules = data.get("rules", [])
        if not isinstance(raw_rules, list):
            raise ValueError("'rules' must be a list of rule objects")
        return cls(
            seed=int(data.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(rule) for rule in raw_rules),
        )
