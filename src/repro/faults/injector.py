"""The fault injector: deterministic decisions at named injection points.

Call sites across the cluster and service declare *injection points* —
``INJECTOR.decide("wal.fsync", shard=fp)`` — and interpret the returned
:class:`Decision` (or ``None``).  The points this codebase wires up, and
what each action means there:

===================== =============================================================
point                 actions the call site honours
===================== =============================================================
``wal.append``        ``fail`` (OSError before the frame is written), ``delay``
``wal.fsync``         ``fail`` (OSError instead of the fsync), ``delay`` (slow disk)
``snapshot.write``    ``fail``, ``delay``, ``corrupt`` (truncated document written)
``httpclient.request````fail`` (refused before sending), ``delay`` (before
                      sending, so ``timeout`` can expire), ``drop`` (the exchange
                      happens but the response is discarded — a lost ack),
                      ``duplicate`` (the request is sent twice)
``worker.heartbeat``  ``stall``/``drop`` (skip this beat), ``delay``, ``fail``
``service.apply``     ``fail`` (engine apply raises — the poison-job scenario)
===================== =============================================================

The process-global :data:`INJECTOR` is inert until a plan is activated;
the off path is one attribute read (``INJECTOR.active``), so production
code pays nothing.  Subprocess workers pick a plan up through the
``REPRO_FAULT_PLAN`` environment variable — a path to a plan JSON file, or
the JSON itself — which :func:`activate_from_env` (called at package
import) loads, so ``spawn_worker(..., fault_plan=...)`` needs no code in
the worker beyond importing :mod:`repro.faults`.

Injected failures raise dedicated subclasses (:class:`InjectedIOError` is
an ``OSError``, :class:`InjectedConnectionError` a ``ConnectionError``,
:class:`InjectedCrash` a ``RuntimeError``) so hardened code paths see
exactly the exception type the real fault would produce, while tests can
still tell injected faults from real ones via :class:`InjectedFault`.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.obs import REGISTRY

from repro.faults.plan import FaultPlan

#: environment variable carrying a plan for this process (path or inline JSON)
PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

FAULTS_INJECTED = REGISTRY.counter(
    "repro_faults_injected_total",
    "faults the injector fired, by injection point and action",
    ("point", "action"),
)


class InjectedFault(Exception):
    """Marker base: this failure was injected, not organic."""


class InjectedIOError(InjectedFault, OSError):
    """An injected disk failure (WAL append/fsync, snapshot write)."""


class InjectedConnectionError(InjectedFault, ConnectionError):
    """An injected network failure (refused connection, dropped response)."""


class InjectedCrash(InjectedFault, RuntimeError):
    """An injected unexpected error inside the engine (poison-job scenario)."""


@dataclass(frozen=True)
class Decision:
    """What a call site should do about one hit (see the action table)."""

    action: str
    rule_index: int
    delay_s: float = 0.0


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against hits, deterministically.

    Per rule it counts *eligible* hits (point and filters matched) and fires
    per the rule's window; the first firing rule wins a hit.  Thread-safe —
    injection points run on the event loop, executor threads and client
    threads alike.
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self._lock = threading.Lock()
        self._plan: Optional[FaultPlan] = None
        self._hits: list = []
        self._rngs: list = []
        self._fired: "dict[tuple, int]" = {}
        self.active = False
        if plan is not None:
            self.activate(plan)

    def activate(self, plan: FaultPlan) -> None:
        """Arm the injector; counters and RNGs restart from the plan's seed."""
        with self._lock:
            self._plan = plan
            self._hits = [0] * len(plan.rules)
            self._rngs = [
                # one independent stream per rule, derived from the plan seed
                random.Random(f"{plan.seed}/{index}")
                for index in range(len(plan.rules))
            ]
            self._fired = {}
            self.active = bool(plan.rules)

    def deactivate(self) -> None:
        with self._lock:
            self._plan = None
            self._hits = []
            self._rngs = []
            self.active = False

    # ------------------------------------------------------------------
    # the call-site API
    # ------------------------------------------------------------------
    def decide(self, point: str, **attrs) -> Optional[Decision]:
        """The plan's verdict on this hit (None = proceed normally)."""
        if not self.active:
            return None
        with self._lock:
            plan = self._plan
            if plan is None:
                return None
            for index, rule in enumerate(plan.rules):
                if rule.point != point or not rule.matches(attrs):
                    continue
                self._hits[index] += 1
                if not rule.fires_on(self._hits[index]):
                    continue
                if (
                    rule.probability is not None
                    and self._rngs[index].random() >= rule.probability
                ):
                    continue
                key = (point, rule.action)
                self._fired[key] = self._fired.get(key, 0) + 1
                FAULTS_INJECTED.labels(point=point, action=rule.action).inc()
                return Decision(
                    action=rule.action, rule_index=index, delay_s=rule.delay_s
                )
        return None

    def io(self, point: str, **attrs) -> None:
        """Convenience for disk points: raise/sleep per the plan's verdict."""
        decision = self.decide(point, **attrs)
        if decision is None:
            return
        if decision.action == "delay":
            import time

            time.sleep(decision.delay_s)
            return
        raise InjectedIOError(f"injected {point} failure ({attrs})")

    def crash(self, point: str, **attrs) -> None:
        """Convenience for engine points: raise :class:`InjectedCrash` on fail."""
        decision = self.decide(point, **attrs)
        if decision is not None and decision.action == "fail":
            raise InjectedCrash(f"injected {point} crash ({attrs})")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def report(self) -> dict:
        """``{"point/action": fired_count}`` — what actually happened."""
        with self._lock:
            return {
                f"{point}/{action}": count
                for (point, action), count in sorted(self._fired.items())
            }


#: the process-global injector every call site consults (inert by default)
INJECTOR = FaultInjector()


def activate_from_env(environ=os.environ) -> bool:
    """Arm :data:`INJECTOR` from ``REPRO_FAULT_PLAN``; True if a plan loaded.

    The variable holds either inline plan JSON (first non-space character
    ``{``) or a path to a plan file.  A present-but-broken plan raises —
    chaos runs must never silently degrade into fault-free runs.
    """
    raw = environ.get(PLAN_ENV_VAR)
    if not raw:
        return False
    text = raw if raw.lstrip().startswith("{") else Path(raw).read_text(
        encoding="utf-8"
    )
    INJECTOR.activate(FaultPlan.from_json(text))
    return True
