"""Evaluation metrics.

The paper reports repair accuracy as F1 over repaired cells (Eq. 7) and, for
the in-depth study of Section 7.3, per-component precision/recall for the
AGP, RSC and FSCR stages.  This package implements both families plus small
timing helpers used by the experiment harness.
"""

from repro.metrics.accuracy import RepairAccuracy, evaluate_repair
from repro.metrics.component import ComponentAccuracy, StageCounts
from repro.metrics.timing import Stopwatch, TimingBreakdown

__all__ = [
    "RepairAccuracy",
    "evaluate_repair",
    "ComponentAccuracy",
    "StageCounts",
    "Stopwatch",
    "TimingBreakdown",
]
