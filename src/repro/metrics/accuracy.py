"""Repair accuracy: precision, recall and F1 over cells (Eq. 7 of the paper).

* ``precision`` — correctly repaired attribute values over all updated
  attribute values,
* ``recall`` — correctly repaired attribute values over all erroneous
  attribute values,
* ``f1`` — their harmonic mean.

A repair of a cell is *correct* when the repaired value equals the
ground-truth clean value of that cell.  Cells belonging to tuples that the
cleaner removed (duplicate elimination) are evaluated on the tuples that
remain; the ``removed_dirty_cells`` counter reports how many erroneous cells
disappeared together with removed duplicates so callers can see the effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataset.table import Cell, Table
from repro.errors.groundtruth import GroundTruth


@dataclass
class RepairAccuracy:
    """Cell-level repair accuracy counters and derived scores."""

    #: cells whose value the cleaner changed
    updated_cells: int = 0
    #: changed cells whose new value equals the ground-truth clean value
    correct_repairs: int = 0
    #: injected errors present in the evaluated tuples
    erroneous_cells: int = 0
    #: injected errors that were still wrong after cleaning
    missed_errors: int = 0
    #: clean cells that the cleaner overwrote with a wrong value
    false_updates: int = 0
    #: injected errors whose tuples were removed by duplicate elimination
    removed_dirty_cells: int = 0
    #: the cells the cleaner changed, for drill-down reporting
    changed_cells: list[Cell] = field(default_factory=list)

    @property
    def precision(self) -> float:
        """Correct repairs over all updates (1.0 when nothing was updated)."""
        if self.updated_cells == 0:
            return 1.0 if self.erroneous_cells == 0 else 0.0
        return self.correct_repairs / self.updated_cells

    @property
    def recall(self) -> float:
        """Correct repairs over all injected errors (1.0 when none exist)."""
        if self.erroneous_cells == 0:
            return 1.0
        return self.correct_repairs / self.erroneous_cells

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (Eq. 7)."""
        precision = self.precision
        recall = self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    def as_dict(self) -> dict[str, float]:
        """Scores and counters as a flat dictionary (for reports)."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "updated_cells": float(self.updated_cells),
            "correct_repairs": float(self.correct_repairs),
            "erroneous_cells": float(self.erroneous_cells),
            "missed_errors": float(self.missed_errors),
            "false_updates": float(self.false_updates),
            "removed_dirty_cells": float(self.removed_dirty_cells),
        }

    def to_json_dict(self) -> dict:
        """Lossless JSON form: the raw counters plus the changed cells.

        Unlike :meth:`as_dict` (floats, derived scores included) this keeps
        exact integers so :meth:`from_json_dict` reconstructs an instance
        whose derived precision/recall/F1 are bit-identical.
        """
        return {
            "updated_cells": self.updated_cells,
            "correct_repairs": self.correct_repairs,
            "erroneous_cells": self.erroneous_cells,
            "missed_errors": self.missed_errors,
            "false_updates": self.false_updates,
            "removed_dirty_cells": self.removed_dirty_cells,
            "changed_cells": [
                [cell.tid, cell.attribute] for cell in self.changed_cells
            ],
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "RepairAccuracy":
        """Rebuild an instance from :meth:`to_json_dict` output."""
        return cls(
            updated_cells=int(data["updated_cells"]),
            correct_repairs=int(data["correct_repairs"]),
            erroneous_cells=int(data["erroneous_cells"]),
            missed_errors=int(data["missed_errors"]),
            false_updates=int(data["false_updates"]),
            removed_dirty_cells=int(data["removed_dirty_cells"]),
            changed_cells=[
                Cell(int(tid), attribute)
                for tid, attribute in data.get("changed_cells", [])
            ],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RepairAccuracy(precision={self.precision:.3f}, "
            f"recall={self.recall:.3f}, f1={self.f1:.3f})"
        )


def evaluate_repair(
    dirty: Table, repaired: Table, ground_truth: GroundTruth
) -> RepairAccuracy:
    """Compare a repaired table against the dirty table and the ground truth.

    Only tuples present in the repaired table are evaluated cell by cell;
    injected errors whose tuple was removed (duplicate elimination) are
    tallied in ``removed_dirty_cells``.
    """
    accuracy = RepairAccuracy()
    surviving_tids = set(repaired.tids)
    for error in ground_truth:
        if error.cell.tid in surviving_tids:
            accuracy.erroneous_cells += 1
        else:
            accuracy.removed_dirty_cells += 1

    for tid in repaired.tids:
        if not dirty.has_tid(tid):
            continue
        for attribute in dirty.schema:
            cell = Cell(tid, attribute)
            dirty_value = dirty.value(tid, attribute)
            repaired_value = repaired.value(tid, attribute)
            is_injected = ground_truth.is_dirty(cell)
            clean_value = (
                ground_truth.clean_value(cell) if is_injected else dirty_value
            )
            changed = repaired_value != dirty_value
            if changed:
                accuracy.updated_cells += 1
                accuracy.changed_cells.append(cell)
                if repaired_value == clean_value:
                    accuracy.correct_repairs += 1
                elif not is_injected:
                    accuracy.false_updates += 1
            if is_injected and repaired_value != clean_value:
                accuracy.missed_errors += 1
    return accuracy
