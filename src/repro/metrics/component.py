"""Per-component accuracy of the MLNClean stages (Section 7.3 of the paper).

The paper defines dedicated metrics for the three components:

* **AGP** — ``Precision-A`` is the fraction of correctly merged abnormal
  groups over all detected abnormal groups, ``Recall-A`` the fraction of
  correctly merged abnormal groups over all *real* abnormal groups, and
  ``#dag`` the total number of data pieces inside detected abnormal groups.
* **RSC** — ``Precision-R`` is the ratio of correctly repaired γs to all
  repaired γs and ``Recall-R`` the ratio of correctly repaired γs to the γs
  containing errors.
* **FSCR** — ``Precision-F`` is the fraction of attribute values correctly
  repaired by FSCR over the erroneous attribute values involved in detected
  conflicts, and ``Recall-F`` the same numerator over all erroneous attribute
  values.

The pipeline fills a :class:`StageCounts` instance per stage when it runs in
instrumented mode (a ground truth is supplied); :class:`ComponentAccuracy`
derives the ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StageCounts:
    """Raw counters of one cleaning stage."""

    #: AGP: groups detected as abnormal / actually abnormal / merged correctly
    detected_abnormal_groups: int = 0
    real_abnormal_groups: int = 0
    correctly_merged_groups: int = 0
    #: AGP: total γs inside detected abnormal groups (#dag in the figures)
    detected_abnormal_gammas: int = 0
    #: RSC: γs rewritten / rewritten to their clean values / containing errors
    repaired_gammas: int = 0
    correctly_repaired_gammas: int = 0
    erroneous_gammas: int = 0
    #: FSCR: erroneous cells correct after FSCR (recall numerator), erroneous
    #: cells involved in detected conflicts, the correct ones among those
    #: (precision numerator), and all erroneous cells on surviving tuples
    fscr_correct_values: int = 0
    conflict_erroneous_values: int = 0
    conflict_correct_values: int = 0
    total_erroneous_values: int = 0

    def merge(self, other: "StageCounts") -> "StageCounts":
        """Sum two counter sets (used by the distributed driver)."""
        merged = StageCounts()
        for name in vars(self):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dictionary (JSON-safe, field order)."""
        return dict(vars(self))

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "StageCounts":
        """Rebuild the counters from :meth:`as_dict` output."""
        return cls(**{key: int(value) for key, value in data.items()})


@dataclass
class ComponentAccuracy:
    """Derived per-stage precision/recall figures."""

    counts: StageCounts = field(default_factory=StageCounts)

    # ------------------------------------------------------------------
    # AGP (Figures 8 and 12)
    # ------------------------------------------------------------------
    @property
    def precision_a(self) -> float:
        if self.counts.detected_abnormal_groups == 0:
            return 0.0
        return self.counts.correctly_merged_groups / self.counts.detected_abnormal_groups

    @property
    def recall_a(self) -> float:
        if self.counts.real_abnormal_groups == 0:
            return 1.0 if self.counts.detected_abnormal_groups == 0 else 0.0
        return self.counts.correctly_merged_groups / self.counts.real_abnormal_groups

    @property
    def detected_abnormal_gammas(self) -> int:
        """#dag: size of the detected abnormal groups in γs."""
        return self.counts.detected_abnormal_gammas

    # ------------------------------------------------------------------
    # RSC (Figures 9 and 13)
    # ------------------------------------------------------------------
    @property
    def precision_r(self) -> float:
        if self.counts.repaired_gammas == 0:
            return 1.0 if self.counts.erroneous_gammas == 0 else 0.0
        return self.counts.correctly_repaired_gammas / self.counts.repaired_gammas

    @property
    def recall_r(self) -> float:
        if self.counts.erroneous_gammas == 0:
            return 1.0
        return self.counts.correctly_repaired_gammas / self.counts.erroneous_gammas

    # ------------------------------------------------------------------
    # FSCR (Figures 10 and 14)
    # ------------------------------------------------------------------
    @property
    def precision_f(self) -> float:
        if self.counts.conflict_erroneous_values == 0:
            # No erroneous cell was involved in a detected conflict: FSCR had
            # nothing to decide, so it made no wrong decision.
            return 1.0
        return self.counts.conflict_correct_values / self.counts.conflict_erroneous_values

    @property
    def recall_f(self) -> float:
        if self.counts.total_erroneous_values == 0:
            return 1.0
        return self.counts.fscr_correct_values / self.counts.total_erroneous_values

    def as_dict(self) -> dict[str, float]:
        """All derived metrics as a flat dictionary."""
        return {
            "precision_a": self.precision_a,
            "recall_a": self.recall_a,
            "dag": float(self.detected_abnormal_gammas),
            "precision_r": self.precision_r,
            "recall_r": self.recall_r,
            "precision_f": self.precision_f,
            "recall_f": self.recall_f,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        values = ", ".join(f"{k}={v:.3f}" for k, v in self.as_dict().items())
        return f"ComponentAccuracy({values})"
