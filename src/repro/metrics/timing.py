"""Wall-clock timing helpers for the experiment harness.

The paper reports runtimes alongside accuracy (Figures 6, 11, 15 and
Table 6).  :class:`Stopwatch` measures individual phases and
:class:`TimingBreakdown` accumulates them per named phase so the harness can
report, e.g., how much of the total time is spent in weight learning (the
paper attributes ~95 % of MLNClean's runtime to it).  :class:`PerfDetails`
bundles the per-stage timings with the run's distance-engine counters; the
batch pipeline surfaces it as ``CleaningReport.details``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional


class Stopwatch:
    """A simple start/stop wall-clock timer."""

    def __init__(self) -> None:
        self._started: float | None = None
        self.elapsed = 0.0

    def start(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("stopwatch was not started")
        self.elapsed += time.perf_counter() - self._started
        self._started = None
        return self.elapsed

    def reset(self) -> None:
        self._started = None
        self.elapsed = 0.0

    @contextmanager
    def measure(self) -> Iterator["Stopwatch"]:
        """Context manager form: ``with watch.measure(): ...``."""
        self.start()
        try:
            yield self
        finally:
            self.stop()


@dataclass
class TimingBreakdown:
    """Accumulated wall-clock time per named phase."""

    phases: dict[str, float] = field(default_factory=dict)

    def record(self, phase: str, seconds: float) -> None:
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    @contextmanager
    def time(self, phase: str) -> Iterator[None]:
        """Measure a block and add it to ``phase``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(phase, time.perf_counter() - started)

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def fraction(self, phase: str) -> float:
        """Share of the total spent in ``phase`` (0.0 when nothing measured)."""
        total = self.total
        if total == 0.0:
            return 0.0
        return self.phases.get(phase, 0.0) / total

    def merge(self, other: "TimingBreakdown") -> "TimingBreakdown":
        merged = TimingBreakdown(dict(self.phases))
        for phase, seconds in other.phases.items():
            merged.record(phase, seconds)
        return merged

    def as_dict(self) -> dict[str, float]:
        return dict(self.phases)


@dataclass
class PerfDetails:
    """Performance drill-down of one batch cleaning run.

    Attached to :attr:`repro.core.report.CleaningReport.details` by the
    batch pipeline: wall-clock per pipeline stage plus the shared
    :class:`~repro.perf.DistanceEngine` counters (pair-distance calls, cache
    hit rate, raw metric evaluations, prune counts), and the Stage-I worker
    fan-out width of ``parallelism=N`` runs.
    """

    #: per-stage wall-clock seconds (a ``TimingBreakdown.as_dict()``)
    timings: dict[str, float] = field(default_factory=dict)
    #: the distance engine's counters (a ``DistanceStats.as_dict()``)
    distance: dict[str, object] = field(default_factory=dict)
    #: Stage-I worker processes of the run (1 = serial)
    parallelism: int = 1
    #: detection drill-down when a detector stack ran (a
    #: ``DirtyCells.to_json_dict()`` plus scope info), ``None`` otherwise
    detection: Optional[dict] = None

    def as_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "timings": dict(self.timings),
            "distance": dict(self.distance),
            "parallelism": self.parallelism,
        }
        if self.detection is not None:
            payload["detection"] = dict(self.detection)
        return payload

    @property
    def detected_cells(self) -> Optional[int]:
        """Detected-cell count (the experiments promote this to a metric)."""
        if self.detection is None:
            return None
        return self.detection.get("count")

    def describe(self) -> str:
        """One line for logs: total time, distance calls, hit rate."""
        total = sum(self.timings.values())
        calls = self.distance.get("calls", 0)
        hit_rate = self.distance.get("hit_rate", 0.0)
        raw = self.distance.get("raw_evaluations", 0)
        return (
            f"{total:.3f}s over {len(self.timings)} stages | "
            f"distance calls {calls} (raw {raw}, hit rate {hit_rate}) | "
            f"parallelism {self.parallelism}"
        )
