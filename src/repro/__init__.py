"""MLNClean reproduction: a hybrid data cleaning framework on Markov logic networks.

The package reproduces "A Hybrid Data Cleaning Framework Using Markov Logic
Networks" (Gao et al., ICDE 2021 / arXiv:1903.05826).  The public API most
users need is re-exported here::

    from repro import MLNClean, MLNCleanConfig, Table, parse_rules

    cleaner = MLNClean(MLNCleanConfig(abnormal_threshold=1))
    report = cleaner.clean(dirty_table, rules)
    print(report.describe())

Sub-packages:

* :mod:`repro.core` — the MLNClean pipeline (MLN index, AGP, RSC, FSCR),
* :mod:`repro.constraints` — FD / CFD / DC rules and the rule parser,
* :mod:`repro.mln` — the Markov-logic substrate (grounding, weights, inference),
* :mod:`repro.dataset`, :mod:`repro.distance`, :mod:`repro.errors`,
  :mod:`repro.metrics` — supporting substrates,
* :mod:`repro.baselines` — the HoloClean-style comparison baseline,
* :mod:`repro.distributed` — the partitioned (Spark-style) MLNClean,
* :mod:`repro.streaming` — incremental MLNClean over micro-batches of
  tuple deltas (continuously arriving data),
* :mod:`repro.workloads` — HAI / CAR / TPC-H synthetic workload generators,
* :mod:`repro.experiments` — one harness per figure/table of the paper.
"""

from repro.core.config import MLNCleanConfig
from repro.core.pipeline import MLNClean
from repro.core.report import CleaningReport
from repro.constraints.parser import parse_rule, parse_rules
from repro.dataset.table import Cell, Row, Table
from repro.errors.injector import ErrorInjector, ErrorSpec
from repro.metrics.accuracy import evaluate_repair
from repro.streaming import (
    Delete,
    DeltaBatch,
    Insert,
    SlidingWindow,
    StreamingMLNClean,
    TumblingWindow,
    Update,
    WorkloadStreamSource,
)

__version__ = "1.1.0"

__all__ = [
    "MLNClean",
    "MLNCleanConfig",
    "CleaningReport",
    "parse_rule",
    "parse_rules",
    "Table",
    "Row",
    "Cell",
    "ErrorInjector",
    "ErrorSpec",
    "evaluate_repair",
    "StreamingMLNClean",
    "DeltaBatch",
    "Insert",
    "Update",
    "Delete",
    "TumblingWindow",
    "SlidingWindow",
    "WorkloadStreamSource",
    "__version__",
]
