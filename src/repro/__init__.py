"""MLNClean reproduction: a hybrid data cleaning framework on Markov logic networks.

The package reproduces "A Hybrid Data Cleaning Framework Using Markov Logic
Networks" (Gao et al., ICDE 2021 / arXiv:1903.05826) and grows it toward a
production-style system.  The recommended entry point is the unified session
API — one facade over every execution mode::

    from repro import CleaningSession

    session = (
        CleaningSession.builder()
        .with_rules("CT -> ST", "HN, PN -> CT")
        .with_config(abnormal_threshold=1)
        .with_backend("batch")        # or "distributed" / "streaming"
        .build()
    )
    session.load_table(dirty_rows)    # Table, dict rows, or a CSV path
    report = session.run()
    print(report.describe())

Every backend returns the same :class:`~repro.core.report.CleaningReport`
(cleaned table, per-stage timings, accuracy when a ground truth is
attached); new backends and pipeline stages plug in through
:func:`~repro.session.register_backend` / :func:`~repro.session.register_stage`.
The pre-session entry points (``MLNClean``, ``DistributedMLNClean``,
``StreamingMLNClean``) remain available as thin paths onto the same engines.

Sub-packages:

* :mod:`repro.session` — the :class:`CleaningSession` facade, execution
  backends, and the pluggable stage registry,
* :mod:`repro.core` — the MLNClean pipeline (MLN index, AGP, RSC, FSCR),
* :mod:`repro.constraints` — FD / CFD / DC rules and the rule parser,
* :mod:`repro.mln` — the Markov-logic substrate (grounding, weights, inference),
* :mod:`repro.dataset`, :mod:`repro.distance`, :mod:`repro.errors`,
  :mod:`repro.metrics` — supporting substrates,
* :mod:`repro.baselines` — the comparison baselines (HoloClean-style,
  minimality, untrained factor graph), all registered cleaners,
* :mod:`repro.distributed` — the partitioned (Spark-style) MLNClean,
* :mod:`repro.streaming` — incremental MLNClean over micro-batches of
  tuple deltas (continuously arriving data),
* :mod:`repro.service` — the concurrent, sharded cleaning service: a
  bounded asyncio job queue, warm per-(workload, cleaner, config) session
  shards, micro-batch coalescing onto the streaming engine, and a
  stdlib-only HTTP front end (``python -m repro.service serve``),
* :mod:`repro.workloads` — HAI / CAR / TPC-H synthetic workload generators
  and the workload registry (names, sizes, recommended configs),
* :mod:`repro.experiments` — declarative experiments: checked-in
  :class:`~repro.experiments.ExperimentSpec` grids, the
  :class:`~repro.experiments.ExperimentRunner`, JSON-lossless
  :class:`~repro.experiments.RunArtifact` results, and one thin renderer
  per figure/table of the paper.
"""

from repro.core.config import MLNCleanConfig
from repro.core.pipeline import MLNClean
from repro.core.report import CleaningReport
from repro.constraints.parser import parse_rule, parse_rules
from repro.dataset.table import Cell, Row, Table
from repro.errors.injector import ErrorInjector, ErrorSpec
from repro.metrics.accuracy import evaluate_repair
from repro.session import (
    Cleaner,
    CleaningSession,
    ExecutionBackend,
    Session,
    SessionBuilder,
    available_backends,
    available_cleaners,
    available_stages,
    get_cleaner,
    load_rules,
    load_table,
    register_backend,
    register_cleaner,
    register_stage,
)
from repro.distributed import DistributedMLNClean
from repro.perf import DistanceEngine, DistanceStats
from repro.streaming import (
    Delete,
    DeltaBatch,
    Insert,
    SlidingWindow,
    StreamingMLNClean,
    TumblingWindow,
    Update,
    WorkloadStreamSource,
)

__version__ = "1.9.0"

__all__ = [
    "CleaningSession",
    "Session",
    "SessionBuilder",
    "ExecutionBackend",
    "Cleaner",
    "load_table",
    "load_rules",
    "register_backend",
    "available_backends",
    "register_cleaner",
    "available_cleaners",
    "get_cleaner",
    "register_stage",
    "available_stages",
    "MLNClean",
    "MLNCleanConfig",
    "CleaningReport",
    "parse_rule",
    "parse_rules",
    "Table",
    "Row",
    "Cell",
    "ErrorInjector",
    "ErrorSpec",
    "evaluate_repair",
    "DistributedMLNClean",
    "DistanceEngine",
    "DistanceStats",
    "StreamingMLNClean",
    "DeltaBatch",
    "Insert",
    "Update",
    "Delete",
    "TumblingWindow",
    "SlidingWindow",
    "WorkloadStreamSource",
    "__version__",
]
