"""Edit-distance metrics.

The Levenshtein distance is the paper's default metric: "the Levenshtein
distance just decides how many different characters between two strings,
regardless of the positions of those characters" (Section 7.3.3), which makes
it robust to typos wherever they occur in the value.

Both edit-distance variants route through the shared fast-path preprocessing
of :mod:`repro.distance.fastpath` (common affix stripping plus the trivial
empty/equal cases) before falling back to their ``O(m·n)`` dynamic programs,
so the distance-metric ablation compares like with like and the
:class:`repro.perf.DistanceEngine` can rely on identical semantics.
"""

from __future__ import annotations

from repro.distance.base import DistanceMetric, register_metric
from repro.distance.fastpath import strip_common_affixes, trivial_edit_distance


class LevenshteinDistance(DistanceMetric):
    """Classic Levenshtein (insert / delete / substitute) edit distance."""

    name = "levenshtein"
    #: common affix stripping preserves this metric's distances
    affix_safe = True
    #: the banded bounded search of repro.perf computes this metric exactly
    supports_banded = True
    #: one edit operation destroys at most q positional q-grams
    qgram_edit_ops = 1

    def distance(self, left: str, right: str) -> float:
        left, right = strip_common_affixes(left, right)
        trivial = trivial_edit_distance(left, right)
        if trivial is not None:
            return trivial
        return self._dp_distance(left, right)

    @staticmethod
    def _dp_distance(left: str, right: str) -> float:
        """The classic rolling-row dynamic program (no preprocessing)."""
        # Keep the shorter string in the inner dimension to bound memory.
        if len(right) > len(left):
            left, right = right, left
        previous = list(range(len(right) + 1))
        for i, char_left in enumerate(left, start=1):
            current = [i]
            for j, char_right in enumerate(right, start=1):
                insert_cost = current[j - 1] + 1
                delete_cost = previous[j] + 1
                substitute_cost = previous[j - 1] + (char_left != char_right)
                current.append(min(insert_cost, delete_cost, substitute_cost))
            previous = current
        return float(previous[-1])

    def max_distance(self, left: str, right: str) -> float:
        return float(max(len(left), len(right), 1))


class DamerauLevenshteinDistance(DistanceMetric):
    """Levenshtein extended with adjacent-character transpositions.

    Not used by the paper, but a natural alternative for typo-heavy data; it is
    exposed so the distance-metric ablation can include it.  The restricted
    (optimal-string-alignment) variant is implemented; affix stripping is safe
    for it because a transposition never pays off across the boundary of a
    maximal common prefix or suffix.
    """

    name = "damerau"
    affix_safe = True
    #: the Levenshtein gram bound applies through d_lev <= 2 * d_damerau
    #: (a transposition is two substitutions to plain Levenshtein), so one
    #: restricted-Damerau operation may destroy up to 2q grams
    qgram_edit_ops = 2

    def distance(self, left: str, right: str) -> float:
        left, right = strip_common_affixes(left, right)
        trivial = trivial_edit_distance(left, right)
        if trivial is not None:
            return trivial
        return self._dp_distance(left, right)

    @staticmethod
    def _dp_distance(left: str, right: str) -> float:
        """The full-matrix restricted Damerau dynamic program."""
        len_l, len_r = len(left), len(right)
        # (len_l + 1) x (len_r + 1) matrix of the restricted Damerau distance.
        rows: list[list[int]] = [
            [0] * (len_r + 1) for _ in range(len_l + 1)
        ]
        for i in range(len_l + 1):
            rows[i][0] = i
        for j in range(len_r + 1):
            rows[0][j] = j
        for i in range(1, len_l + 1):
            for j in range(1, len_r + 1):
                cost = 0 if left[i - 1] == right[j - 1] else 1
                best = min(
                    rows[i - 1][j] + 1,
                    rows[i][j - 1] + 1,
                    rows[i - 1][j - 1] + cost,
                )
                if (
                    i > 1
                    and j > 1
                    and left[i - 1] == right[j - 2]
                    and left[i - 2] == right[j - 1]
                ):
                    best = min(best, rows[i - 2][j - 2] + 1)
                rows[i][j] = best
        return float(rows[len_l][len_r])

    def max_distance(self, left: str, right: str) -> float:
        return float(max(len(left), len(right), 1))


register_metric(LevenshteinDistance.name, LevenshteinDistance)
register_metric(DamerauLevenshteinDistance.name, DamerauLevenshteinDistance)
