"""Edit-distance metrics.

The Levenshtein distance is the paper's default metric: "the Levenshtein
distance just decides how many different characters between two strings,
regardless of the positions of those characters" (Section 7.3.3), which makes
it robust to typos wherever they occur in the value.
"""

from __future__ import annotations

from repro.distance.base import DistanceMetric, register_metric


class LevenshteinDistance(DistanceMetric):
    """Classic Levenshtein (insert / delete / substitute) edit distance."""

    name = "levenshtein"

    def distance(self, left: str, right: str) -> float:
        if left == right:
            return 0.0
        if not left:
            return float(len(right))
        if not right:
            return float(len(left))
        # Keep the shorter string in the inner dimension to bound memory.
        if len(right) > len(left):
            left, right = right, left
        previous = list(range(len(right) + 1))
        for i, char_left in enumerate(left, start=1):
            current = [i]
            for j, char_right in enumerate(right, start=1):
                insert_cost = current[j - 1] + 1
                delete_cost = previous[j] + 1
                substitute_cost = previous[j - 1] + (char_left != char_right)
                current.append(min(insert_cost, delete_cost, substitute_cost))
            previous = current
        return float(previous[-1])

    def max_distance(self, left: str, right: str) -> float:
        return float(max(len(left), len(right), 1))


class DamerauLevenshteinDistance(DistanceMetric):
    """Levenshtein extended with adjacent-character transpositions.

    Not used by the paper, but a natural alternative for typo-heavy data; it is
    exposed so the distance-metric ablation can include it.
    """

    name = "damerau"

    def distance(self, left: str, right: str) -> float:
        if left == right:
            return 0.0
        if not left:
            return float(len(right))
        if not right:
            return float(len(left))
        len_l, len_r = len(left), len(right)
        # (len_l + 1) x (len_r + 1) matrix of the restricted Damerau distance.
        rows: list[list[int]] = [
            [0] * (len_r + 1) for _ in range(len_l + 1)
        ]
        for i in range(len_l + 1):
            rows[i][0] = i
        for j in range(len_r + 1):
            rows[0][j] = j
        for i in range(1, len_l + 1):
            for j in range(1, len_r + 1):
                cost = 0 if left[i - 1] == right[j - 1] else 1
                best = min(
                    rows[i - 1][j] + 1,
                    rows[i][j - 1] + 1,
                    rows[i - 1][j - 1] + cost,
                )
                if (
                    i > 1
                    and j > 1
                    and left[i - 1] == right[j - 2]
                    and left[i - 2] == right[j - 1]
                ):
                    best = min(best, rows[i - 2][j - 2] + 1)
                rows[i][j] = best
        return float(rows[len_l][len_r])

    def max_distance(self, left: str, right: str) -> float:
        return float(max(len(left), len(right), 1))


register_metric(LevenshteinDistance.name, LevenshteinDistance)
register_metric(DamerauLevenshteinDistance.name, DamerauLevenshteinDistance)
