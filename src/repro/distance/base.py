"""Distance-metric interface and registry.

A metric measures the dissimilarity of two strings.  MLNClean additionally
needs the distance between two *pieces of data* (tuples of attribute values),
which every metric derives by summing the per-attribute string distances; this
matches the paper's use of the Levenshtein distance over the concatenated
attribute values of a γ.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import Callable


class DistanceMetric(ABC):
    """Base class for string distance metrics.

    Subclasses implement :meth:`distance`, which must satisfy
    ``distance(a, a) == 0`` and symmetry; the normalised variant maps into
    ``[0, 1]`` which the reliability score relies on.
    """

    #: short name used by the registry and experiment configuration
    name: str = "abstract"
    #: whether common prefix/suffix stripping preserves this metric's
    #: distances (true for the Levenshtein family); enables the shared
    #: fast-path preprocessing of :class:`repro.perf.DistanceEngine`
    affix_safe: bool = False
    #: whether the banded early-exit search of
    #: :meth:`repro.perf.DistanceEngine.bounded_distance` computes this
    #: metric exactly (only plain Levenshtein)
    supports_banded: bool = False
    #: how many bound-destroying edit operations one q-gram mismatch may
    #: correspond to for this metric, or ``None`` when the q-gram count
    #: filter of :mod:`repro.perf.qgram` is not a valid lower bound (which
    #: disables candidate pruning — batch queries fall back to a plain
    #: ordered scan).  ``1`` for Levenshtein; ``2`` for restricted Damerau,
    #: whose distance is at least half the Levenshtein distance
    qgram_edit_ops = None

    @abstractmethod
    def distance(self, left: str, right: str) -> float:
        """Dissimilarity of two strings (0 means identical)."""

    def normalized(self, left: str, right: str) -> float:
        """Distance scaled into ``[0, 1]``.

        The default scales by the maximum possible raw distance for the two
        strings, which subclasses override when a tighter bound exists.
        """
        if left == right:
            return 0.0
        bound = self.max_distance(left, right)
        if bound <= 0:
            return 0.0
        return min(1.0, self.distance(left, right) / bound)

    def max_distance(self, left: str, right: str) -> float:
        """An upper bound of :meth:`distance` for the two strings."""
        return float(max(len(left), len(right), 1))

    def similarity(self, left: str, right: str) -> float:
        """Convenience: ``1 - normalized distance``."""
        return 1.0 - self.normalized(left, right)

    # ------------------------------------------------------------------
    # distances between value tuples (pieces of data)
    # ------------------------------------------------------------------
    def values_distance(self, left: Sequence[str], right: Sequence[str]) -> float:
        """Sum of per-position raw distances between two value tuples."""
        if len(left) != len(right):
            raise ValueError("value tuples must have the same length")
        return sum(self.distance(a, b) for a, b in zip(left, right))

    def values_normalized(self, left: Sequence[str], right: Sequence[str]) -> float:
        """Per-position normalised distances averaged into ``[0, 1]``."""
        if len(left) != len(right):
            raise ValueError("value tuples must have the same length")
        if not left:
            return 0.0
        return sum(self.normalized(a, b) for a, b in zip(left, right)) / len(left)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


_REGISTRY: dict[str, Callable[[], DistanceMetric]] = {}


def register_metric(name: str, factory: Callable[[], DistanceMetric]) -> None:
    """Register a metric factory under ``name`` (lower-cased)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"distance metric {name!r} is already registered")
    _REGISTRY[key] = factory


def get_metric(name: str) -> DistanceMetric:
    """Instantiate the metric registered under ``name``.

    Accepts the registered short names (``"levenshtein"``, ``"cosine"``,
    ``"damerau"``, ``"jaccard"``), case-insensitively.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown distance metric {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]()


def available_metrics() -> list[str]:
    """Names of all registered metrics."""
    return sorted(_REGISTRY)
