"""Shared algorithmic fast paths for edit-distance metrics.

Three classic accelerations, factored out so the Levenshtein and
Damerau-Levenshtein metrics (and the :class:`repro.perf.DistanceEngine`
wrapping them) all run through the identical preprocessing:

* **common affix stripping** — characters shared at the start and end of both
  strings never participate in an optimal edit script, so they are removed
  before the ``O(m·n)`` dynamic program runs.  Safe for plain Levenshtein and
  for the restricted Damerau variant (a transposition never spans the
  boundary of a maximal common affix).
* **length-difference lower bound** — ``|len(a) − len(b)| ≤ d(a, b)``, which
  settles one-sided-empty cases outright and lets a bounded search refuse
  obviously-far pairs without touching the matrix.
* **banded early-exit search** — :func:`bounded_levenshtein` only fills the
  diagonal band of half-width ``k`` and abandons as soon as every entry of a
  row exceeds ``k``; the answer is exact whenever the true distance is at
  most ``k`` (an optimal alignment with cost ``≤ k`` never leaves the band).
"""

from __future__ import annotations


def strip_common_affixes(left: str, right: str) -> "tuple[str, str]":
    """Remove the longest common prefix and suffix of the two strings.

    Distance-preserving for the Levenshtein family: an optimal edit script
    can always keep shared leading/trailing characters untouched.
    """
    if not left or not right:
        return left, right
    # common prefix
    start = 0
    limit = min(len(left), len(right))
    while start < limit and left[start] == right[start]:
        start += 1
    # common suffix (never overlapping the stripped prefix)
    end_left, end_right = len(left), len(right)
    while (
        end_left > start
        and end_right > start
        and left[end_left - 1] == right[end_right - 1]
    ):
        end_left -= 1
        end_right -= 1
    return left[start:end_left], right[start:end_right]


def trivial_edit_distance(left: str, right: str) -> "float | None":
    """The edit distance of an affix-stripped pair when no matrix is needed.

    ``None`` means both sides are non-empty and a dynamic program must run.
    After affix stripping, one-sided-empty pairs cost exactly the length of
    the other side (pure insertions/deletions) for Levenshtein and for the
    restricted Damerau variant alike.
    """
    if left == right:
        return 0.0
    if not left:
        return float(len(right))
    if not right:
        return float(len(left))
    return None


def bounded_levenshtein(left: str, right: str, radius: int) -> "tuple[float, bool]":
    """Banded Levenshtein distance with early exit.

    Returns ``(value, exact)``.  ``exact`` is ``True`` iff the true distance
    is at most ``radius`` — then ``value`` is that distance.  Otherwise
    ``value`` is a lower bound of the true distance that is strictly greater
    than ``radius`` (``radius + 1``, or the length difference when that alone
    already exceeds the radius).

    Expects the caller to have handled equal strings and empty sides (see
    :func:`trivial_edit_distance`).
    """
    len_left, len_right = len(left), len(right)
    if len_right > len_left:
        left, right = right, left
        len_left, len_right = len_right, len_left
    if len_left - len_right > radius:
        return float(len_left - len_right), False
    if radius >= len_left:
        # The band covers the whole matrix; fall back to the classic rolling
        # row, which is cheaper than band bookkeeping at this size.
        previous = list(range(len_right + 1))
        for i, char_left in enumerate(left, start=1):
            current = [i]
            for j, char_right in enumerate(right, start=1):
                current.append(
                    min(
                        current[j - 1] + 1,
                        previous[j] + 1,
                        previous[j - 1] + (char_left != char_right),
                    )
                )
            previous = current
        distance = previous[-1]
        return float(distance), distance <= radius
    big = radius + 1
    # previous row covers columns previous_lo .. previous_lo + len(previous) - 1
    previous_lo = 0
    previous = list(range(min(len_right, radius) + 1))
    for i in range(1, len_left + 1):
        lo = i - radius if i > radius else 0
        hi = min(len_right, i + radius)
        char_left = left[i - 1]
        current: list[int] = []
        row_min = big
        for j in range(lo, hi + 1):
            if j == 0:
                cost = i
            else:
                index = j - 1 - previous_lo
                substitute = (
                    previous[index] if 0 <= index < len(previous) else big
                ) + (char_left != right[j - 1])
                index += 1
                delete = (previous[index] if 0 <= index < len(previous) else big) + 1
                insert = (current[j - 1 - lo] + 1) if j > lo else big
                cost = min(substitute, delete, insert)
            current.append(cost)
            if cost < row_min:
                row_min = cost
        if row_min > radius:
            # Every continuation only grows: the true distance exceeds the
            # radius, and (being integral) is at least radius + 1.
            return float(big), False
        previous, previous_lo = current, lo
    distance = previous[len_right - previous_lo]
    if distance > radius:
        return float(big), False
    return float(distance), True
