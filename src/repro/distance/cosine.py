"""Set / vector based string distances.

The cosine distance over character n-gram vectors is the alternative metric
evaluated in Table 5 of the paper.  The paper notes its weakness: "if the
foremost few characters of a string are incorrectly spelled, the cosine
distance from it to its similar string might be large", which is why the
Levenshtein distance wins on typo-heavy data.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.distance.base import DistanceMetric, register_metric


def character_ngrams(value: str, n: int) -> Counter:
    """Multiset of character ``n``-grams of ``value``.

    Strings shorter than ``n`` contribute themselves as a single gram so that
    very short values still produce a non-empty profile.
    """
    if not value:
        return Counter()
    if len(value) < n:
        return Counter({value: 1})
    return Counter(value[i : i + n] for i in range(len(value) - n + 1))


class CosineDistance(DistanceMetric):
    """``1 - cosine similarity`` of character n-gram count vectors."""

    name = "cosine"

    def __init__(self, ngram_size: int = 2):
        if ngram_size < 1:
            raise ValueError("ngram_size must be >= 1")
        self.ngram_size = ngram_size

    def distance(self, left: str, right: str) -> float:
        if left == right:
            return 0.0
        grams_left = character_ngrams(left, self.ngram_size)
        grams_right = character_ngrams(right, self.ngram_size)
        if not grams_left or not grams_right:
            return 1.0
        dot = sum(
            count * grams_right.get(gram, 0) for gram, count in grams_left.items()
        )
        norm_left = math.sqrt(sum(c * c for c in grams_left.values()))
        norm_right = math.sqrt(sum(c * c for c in grams_right.values()))
        if norm_left == 0.0 or norm_right == 0.0:
            return 1.0
        similarity = dot / (norm_left * norm_right)
        return max(0.0, 1.0 - similarity)

    def max_distance(self, left: str, right: str) -> float:
        return 1.0

    def normalized(self, left: str, right: str) -> float:
        # Cosine distance is already in [0, 1].
        return min(1.0, self.distance(left, right))


class JaccardDistance(DistanceMetric):
    """``1 - Jaccard similarity`` of character n-gram sets."""

    name = "jaccard"

    def __init__(self, ngram_size: int = 2):
        if ngram_size < 1:
            raise ValueError("ngram_size must be >= 1")
        self.ngram_size = ngram_size

    def distance(self, left: str, right: str) -> float:
        if left == right:
            return 0.0
        grams_left = set(character_ngrams(left, self.ngram_size))
        grams_right = set(character_ngrams(right, self.ngram_size))
        if not grams_left and not grams_right:
            return 0.0
        if not grams_left or not grams_right:
            return 1.0
        intersection = len(grams_left & grams_right)
        union = len(grams_left | grams_right)
        return 1.0 - intersection / union

    def max_distance(self, left: str, right: str) -> float:
        return 1.0

    def normalized(self, left: str, right: str) -> float:
        return min(1.0, self.distance(left, right))


register_metric(CosineDistance.name, CosineDistance)
register_metric(JaccardDistance.name, JaccardDistance)
