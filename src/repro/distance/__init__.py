"""String distance metrics.

The distance metric drives two parts of MLNClean (Section 7.3.3):

* the AGP strategy measures the distance between a candidate abnormal group
  and its nearest normal group, and
* the RSC reliability score multiplies the minimum replacement distance of a
  data piece by its learned Markov weight.

The paper evaluates the Levenshtein distance (default) against the cosine
distance (Table 5).  This package implements both plus a couple of common
alternatives, all behind a uniform :class:`DistanceMetric` interface and a
registry keyed by name so experiments can select a metric from configuration.
"""

from repro.distance.base import DistanceMetric, get_metric, register_metric, available_metrics
from repro.distance.levenshtein import LevenshteinDistance, DamerauLevenshteinDistance
from repro.distance.cosine import CosineDistance, JaccardDistance

__all__ = [
    "DistanceMetric",
    "LevenshteinDistance",
    "DamerauLevenshteinDistance",
    "CosineDistance",
    "JaccardDistance",
    "get_metric",
    "register_metric",
    "available_metrics",
]
