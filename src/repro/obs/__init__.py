"""Observability: span tracing, metrics, and profiling hooks.

The telemetry layer of the package, dependency-free and off-path by
default:

* :mod:`repro.obs.trace` — a span tracer threaded through sessions,
  stages, all execution backends, and the service job lifecycle.  Inactive
  tracing costs two no-op calls per span; activate with
  :func:`use_tracer`, the ``MLNCleanConfig.trace`` knob, ``python -m
  repro.experiments run --trace out.json`` or ``python -m repro.service
  serve --trace-dir DIR``.
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  in a :class:`MetricsRegistry`; the process-default :data:`REGISTRY`
  below carries the library-level instruments (per-stage wall-clock,
  completed runs) and absorbs the process-global distance-engine counters
  as a scrape-time collector.  The service serves all of it as
  ``GET /metrics`` in Prometheus text format.

The helpers here are the single seam the pipeline code uses, so a stage is
instrumented with exactly one ``with`` statement::

    with stage_scope(timings, "batch", stage.name):
        stage.run(context)

which measures once and fans out to three sinks: the report's
``TimingBreakdown``, the ``repro_stage_seconds_total`` counter, and (when a
tracer is ambient) a ``stage:<name>`` span.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    ensure_tracer,
    name_tree,
    redacted_spans,
    render_tree,
    span,
    to_chrome,
    tracing_active,
    use_tracer,
)

#: the process-default registry (library instruments + the service's scrape)
REGISTRY = MetricsRegistry()

#: wall-clock per pipeline stage, per backend — always on (one counter add
#: per stage per run), the substrate of stage-resolved perf trajectories
STAGE_SECONDS = REGISTRY.counter(
    "repro_stage_seconds_total",
    "wall-clock seconds spent per pipeline stage",
    ("backend", "stage"),
)

#: completed cleaning runs per backend
RUNS_TOTAL = REGISTRY.counter(
    "repro_runs_total",
    "completed cleaning runs",
    ("backend",),
)

#: latency of the WAL fsync that gates every delta acknowledgement — the
#: durability tax of the cluster's write path (buckets sized for fsync:
#: sub-millisecond on NVMe through tens of milliseconds on shared disks)
WAL_FSYNC_SECONDS = REGISTRY.histogram(
    "repro_wal_fsync_seconds",
    "wall-clock seconds per write-ahead-log append + fsync",
    buckets=(0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0),
)

#: deltas replayed from WAL tails during shard recovery
RECOVERY_REPLAYED_DELTAS = REGISTRY.counter(
    "repro_recovery_replayed_deltas_total",
    "deltas replayed from write-ahead-log tails during shard recovery",
)

#: shard recoveries performed, by how the state came back
RECOVERY_RUNS = REGISTRY.counter(
    "repro_recovery_runs_total",
    "shard recoveries, by source of the recovered state",
    ("source",),
)

#: cells flagged dirty by each detector of a detection stack
DETECTOR_CELLS = REGISTRY.counter(
    "repro_detector_cells_total",
    "cells flagged dirty per error detector",
    ("detector",),
)

#: wall-clock spent running detector stacks, per backend
DETECT_SECONDS = REGISTRY.counter(
    "repro_detect_seconds_total",
    "wall-clock seconds spent in the error-detection phase",
    ("backend",),
)


def get_registry() -> MetricsRegistry:
    """The process-default :class:`MetricsRegistry`."""
    return REGISTRY


def observe_stage(backend: str, stage: str, seconds: float) -> None:
    """Record one stage execution in the default registry."""
    STAGE_SECONDS.labels(backend=backend, stage=stage).inc(seconds)


def observe_run(backend: str) -> None:
    """Count one completed cleaning run in the default registry."""
    RUNS_TOTAL.labels(backend=backend).inc()


@contextmanager
def stage_scope(timings, backend: str, stage: str, **attrs):
    """Time one stage into ``timings``, the stage counter, and a span.

    One measurement, three sinks: the per-run ``TimingBreakdown`` the
    report carries, the cumulative ``repro_stage_seconds_total`` counter,
    and a ``stage:<name>`` span on the ambient tracer (no-op when tracing
    is off).  Yields the span, so callers can attach outcome attributes.
    """
    started = time.perf_counter()
    try:
        with span(f"stage:{stage}", backend=backend, **attrs) as stage_span:
            yield stage_span
    finally:
        elapsed = time.perf_counter() - started
        timings.record(stage, elapsed)
        STAGE_SECONDS.labels(backend=backend, stage=stage).inc(elapsed)


def stage_seconds_snapshot() -> "dict[str, float]":
    """``{"<backend>.<stage>": seconds}`` from the default registry.

    Benchmarks diff two snapshots around a harness run to attribute
    wall-clock to stages (``BENCH_perf.json``'s ``stage_seconds``).
    """
    out: "dict[str, float]" = {}
    for labels, child in STAGE_SECONDS.samples():
        out[f"{labels['backend']}.{labels['stage']}"] = child.value
    return out


@REGISTRY.register_collector
def _distance_collector():
    """Expose the process-global distance-engine counters at scrape time.

    The accumulator itself lives in :mod:`repro.perf.engine` (engine-local
    counters merged under a lock); this collector absorbs it into the
    registry instead of keeping a second copy of every counter.  The import
    is deferred to keep :mod:`repro.obs` free of package dependencies.
    """
    from repro.perf.engine import global_distance_stats

    stats = global_distance_stats().as_dict()
    hit_rate = stats.pop("hit_rate", 0.0)
    families = [
        {
            "name": f"repro_distance_{key}_total",
            "type": "counter",
            "help": f"process-wide distance-engine counter: {key}",
            "samples": [({}, value)],
        }
        for key, value in stats.items()
    ]
    families.append(
        {
            "name": "repro_distance_cache_hit_rate",
            "type": "gauge",
            "help": "fraction of pair requests answered without computation",
            "samples": [({}, hit_rate)],
        }
    )
    return families


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RECOVERY_REPLAYED_DELTAS",
    "RECOVERY_RUNS",
    "REGISTRY",
    "RUNS_TOTAL",
    "STAGE_SECONDS",
    "WAL_FSYNC_SECONDS",
    "Span",
    "Tracer",
    "current_tracer",
    "ensure_tracer",
    "get_registry",
    "name_tree",
    "observe_run",
    "observe_stage",
    "parse_prometheus",
    "redacted_spans",
    "render_tree",
    "span",
    "stage_scope",
    "stage_seconds_snapshot",
    "to_chrome",
    "tracing_active",
    "use_tracer",
]
