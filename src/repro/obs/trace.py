"""A dependency-free span tracer (the tracing half of :mod:`repro.obs`).

One :class:`Tracer` collects :class:`Span` records — named, attributed,
parent-linked intervals — from every layer of a cleaning run: session,
backend, pipeline stages, streaming ticks, distributed phases, service
jobs.  Tracing is **opt-in and off-path by default**: the ambient tracer is
a :class:`NullTracer` whose ``span()`` returns one reusable no-op context
manager, so instrumented code pays a dictionary lookup and two no-op calls
per span when nobody is tracing.

Activation is scoped, not global::

    tracer = Tracer()
    with use_tracer(tracer):
        session.run()                       # every layer below records spans
    print(render_tree(tracer.finished()))   # human tree
    json.dumps(to_chrome(tracer.finished()))  # chrome://tracing / Perfetto

Identifiers are **deterministic**: trace ids (``t1``, ``t2``, ...) and span
ids (``s1``, ``s2``, ...) are per-tracer counters in creation order, so two
identical runs produce identical span trees — which is what the
span-tree-stability tests assert via :func:`name_tree`.  Wall-clock lives
only in ``start``/``end`` (seconds since the tracer's epoch); the
:func:`redacted_spans` export drops exactly those fields, leaving a
byte-stable description of the run's structure.

Cross-thread spans (the service executes cleaning work on a thread pool,
where context variables do not propagate) are parented explicitly::

    parent = tracer.begin("service.request", job="j000001")  # event loop
    # ... on the worker thread:
    with use_tracer(tracer), tracer.attach(parent):
        with span("shard.clean"):                  # child of the request
            ...
    tracer.end(parent)                             # event loop, at finalize
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterable, Optional


class Span:
    """One named, attributed interval of a trace.

    ``start``/``end`` are seconds since the owning tracer's epoch (a
    monotonic clock, not wall time); ``parent_id`` is ``None`` for roots.
    A span that exited through an exception carries ``status="error"`` and
    the formatted exception in ``error``.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attrs",
        "start",
        "end",
        "status",
        "error",
        "thread",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start: float,
        thread: int,
        attrs: Optional[dict] = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = dict(attrs or {})
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None
        self.thread = thread

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def set(self, **attrs) -> "Span":
        """Attach attributes after the span started (chains)."""
        self.attrs.update(attrs)
        return self

    def record_exception(self, exc: BaseException) -> None:
        self.status = "error"
        self.error = f"{type(exc).__name__}: {exc}"

    def as_dict(self) -> dict:
        """JSON-safe record (wall-clock included; see :func:`redacted_spans`)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, trace={self.trace_id}, "
            f"parent={self.parent_id}, status={self.status})"
        )


class _NullSpan:
    """The reusable no-op stand-in the null tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, **_attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The ambient default: accepts every call, records nothing."""

    tracing = False

    def span(self, _name: str, **_attrs) -> _NullSpan:
        return _NULL_SPAN

    def begin(self, _name: str, parent=None, **_attrs) -> _NullSpan:
        return _NULL_SPAN

    def end(self, _span) -> None:
        return None

    @contextmanager
    def attach(self, _span):
        yield

    def finished(self) -> list:
        return []


NULL_TRACER = NullTracer()

#: the ambient tracer instrumented code reports to (defaults to the no-op)
_ACTIVE_TRACER: "ContextVar" = ContextVar("repro_obs_tracer", default=NULL_TRACER)
#: the ambient parent span new spans nest under
_ACTIVE_SPAN: "ContextVar[Optional[Span]]" = ContextVar("repro_obs_span", default=None)

#: sentinel: "parent not given — use the ambient current span"
_AMBIENT = object()


class _SpanContext:
    """Context-manager shell around one live span of a real tracer."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span
        self._token = None

    def __enter__(self) -> Span:
        self._token = _ACTIVE_SPAN.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if self._token is not None:
            _ACTIVE_SPAN.reset(self._token)
        if exc is not None:
            self._span.record_exception(exc)
        self._tracer.end(self._span)
        return False


class Tracer:
    """Collects finished spans, thread-safely, with deterministic ids.

    ``max_spans`` bounds memory: beyond it the oldest finished spans are
    dropped (and counted in :attr:`dropped`) — a long-lived service exports
    and pops per-job traces well before the bound matters.
    """

    def __init__(self, max_spans: int = 65536):
        if max_spans < 1:
            raise ValueError("the tracer needs max_spans >= 1")
        self.max_spans = max_spans
        self.dropped = 0
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._finished: "list[Span]" = []
        self._span_seq = 0
        self._trace_seq = 0
        #: small stable ids for the threads that produced spans (chrome tid)
        self._thread_ids: "dict[int, int]" = {}

    tracing = True

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _SpanContext:
        """A context manager recording one span under the ambient parent."""
        return _SpanContext(self, self.begin(name, **attrs))

    def begin(self, name: str, parent=_AMBIENT, **attrs) -> Span:
        """Start a span explicitly (no context manager; end with :meth:`end`).

        ``parent`` may be a :class:`Span`, ``None`` (force a new root), or
        omitted to nest under the ambient current span.  Roots start a new
        trace id.
        """
        if parent is _AMBIENT:
            parent = _ACTIVE_SPAN.get()
        with self._lock:
            self._span_seq += 1
            span_id = f"s{self._span_seq}"
            if parent is None:
                self._trace_seq += 1
                trace_id = f"t{self._trace_seq}"
            else:
                trace_id = parent.trace_id
            thread = self._thread_ids.setdefault(
                threading.get_ident(), len(self._thread_ids) + 1
            )
        return Span(
            name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            start=time.perf_counter() - self._epoch,
            thread=thread,
            attrs=attrs,
        )

    def end(self, span: Span) -> None:
        """Finish a span and file it (idempotent for already-ended spans)."""
        if not isinstance(span, Span) or span.end is not None:
            return
        span.end = time.perf_counter() - self._epoch
        with self._lock:
            self._finished.append(span)
            overflow = len(self._finished) - self.max_spans
            if overflow > 0:
                del self._finished[:overflow]
                self.dropped += overflow

    @contextmanager
    def attach(self, span: Optional[Span]):
        """Make ``span`` the ambient parent (cross-thread span stitching)."""
        token = _ACTIVE_SPAN.set(span)
        try:
            yield span
        finally:
            _ACTIVE_SPAN.reset(token)

    # ------------------------------------------------------------------
    # harvesting
    # ------------------------------------------------------------------
    def finished(self) -> "list[Span]":
        """Snapshot of the finished spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def pop_trace(self, trace_id: str) -> "list[Span]":
        """Remove and return every finished span of one trace (export+free)."""
        with self._lock:
            mine = [s for s in self._finished if s.trace_id == trace_id]
            self._finished = [s for s in self._finished if s.trace_id != trace_id]
        return mine

    def clear(self) -> None:
        with self._lock:
            self._finished = []


# ----------------------------------------------------------------------
# ambient access
# ----------------------------------------------------------------------
def current_tracer():
    """The ambient tracer (the shared :data:`NULL_TRACER` when inactive)."""
    return _ACTIVE_TRACER.get()


def tracing_active() -> bool:
    """Whether a real tracer is ambient in this context."""
    return _ACTIVE_TRACER.get() is not NULL_TRACER


def span(name: str, **attrs):
    """Record a span on the ambient tracer (no-op without one).

    This is the one call instrumented code makes; it costs a context-variable
    read and a no-op allocation-free context manager when tracing is off.
    """
    return _ACTIVE_TRACER.get().span(name, **attrs)


@contextmanager
def use_tracer(tracer):
    """Make ``tracer`` ambient for the dynamic extent of the block."""
    tracer_token = _ACTIVE_TRACER.set(tracer)
    span_token = _ACTIVE_SPAN.set(None)
    try:
        yield tracer
    finally:
        _ACTIVE_SPAN.reset(span_token)
        _ACTIVE_TRACER.reset(tracer_token)


@contextmanager
def ensure_tracer(enabled: bool = True):
    """Yield the ambient tracer, creating one when ``enabled`` asks for it.

    The ``MLNCleanConfig.trace`` hook: a session/pipeline whose config opts
    in runs under a fresh tracer even when the caller installed none; an
    already-ambient tracer is reused (never shadowed), and with tracing
    neither ambient nor requested the block runs untraced (yields ``None``).
    """
    current = _ACTIVE_TRACER.get()
    if current is not NULL_TRACER:
        yield current
        return
    if not enabled:
        yield None
        return
    with use_tracer(Tracer()) as tracer:
        yield tracer


# ----------------------------------------------------------------------
# exports
# ----------------------------------------------------------------------
#: span-record keys that carry wall-clock (what redaction removes)
WALL_CLOCK_FIELDS = ("start", "end", "duration")


def _span_order(span: Span) -> int:
    """Creation order (span ids are sequential) — deterministic across runs."""
    return int(span.span_id[1:])


def redacted_spans(spans: "Iterable[Span]") -> "list[dict]":
    """Deterministic span records: wall-clock fields removed, creation order.

    Two runs of the same workload yield byte-identical redacted lists (ids
    are per-tracer counters and attributes carry no clock values), which is
    what keeps trace-carrying artifacts comparable across runs.
    """
    out = []
    for item in sorted(spans, key=_span_order):
        record = item.as_dict()
        for key in WALL_CLOCK_FIELDS:
            record.pop(key, None)
        out.append(record)
    return out


def to_chrome(spans: "Iterable[Span]", redact: bool = False) -> dict:
    """The spans as a Chrome ``trace_event`` JSON object.

    Load the serialized dict in ``chrome://tracing`` or https://ui.perfetto.dev
    — complete events (``ph="X"``) with microsecond timestamps, one chrome
    "thread" per producing Python thread.  ``redact=True`` zeroes ``ts`` and
    ``dur`` (structure-only export for byte-stable comparisons).
    """
    events = []
    for item in sorted(spans, key=_span_order):
        end = item.end if item.end is not None else item.start
        args = {
            "span_id": item.span_id,
            "parent_id": item.parent_id,
            "trace_id": item.trace_id,
            "status": item.status,
        }
        if item.error is not None:
            args["error"] = item.error
        args.update(item.attrs)
        events.append(
            {
                "name": item.name,
                "cat": "repro",
                "ph": "X",
                "ts": 0 if redact else round(item.start * 1e6, 1),
                "dur": 0 if redact else round((end - item.start) * 1e6, 1),
                "pid": 1,
                "tid": item.thread,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def name_tree(spans: "Iterable[Span]") -> "list":
    """The trace structure as nested ``[name, [children...]]`` lists.

    Strips ids, attributes and clocks — exactly what must be stable across
    repeat runs of the same workload.
    """
    spans = sorted(spans, key=_span_order)
    children: "dict[Optional[str], list[Span]]" = {}
    for item in spans:
        children.setdefault(item.parent_id, []).append(item)

    def build(item: Span) -> list:
        return [item.name, [build(child) for child in children.get(item.span_id, [])]]

    return [build(root) for root in children.get(None, [])]


def render_tree(spans: "Iterable[Span]", attrs: bool = True) -> str:
    """A human box-drawing tree of the spans, one block per trace."""
    spans = sorted(spans, key=_span_order)
    children: "dict[Optional[str], list[Span]]" = {}
    for item in spans:
        children.setdefault(item.parent_id, []).append(item)
    lines: "list[str]" = []

    def describe(item: Span) -> str:
        text = item.name
        if item.duration is not None:
            text += f" ({item.duration * 1e3:.1f}ms"
            if attrs and item.attrs:
                rendered = ", ".join(f"{k}={v}" for k, v in item.attrs.items())
                text += f", {rendered}"
            text += ")"
        if item.status != "ok":
            text += f" !{item.status}: {item.error}"
        return text

    def walk(item: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(describe(item))
            child_prefix = ""
        else:
            lines.append(prefix + ("└─ " if is_last else "├─ ") + describe(item))
            child_prefix = prefix + ("   " if is_last else "│  ")
        kids = children.get(item.span_id, [])
        for index, kid in enumerate(kids):
            walk(kid, child_prefix, index == len(kids) - 1, False)

    for root in children.get(None, []):
        walk(root, "", True, True)
    return "\n".join(lines)
