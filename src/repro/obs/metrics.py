"""A small metrics registry (the metrics half of :mod:`repro.obs`).

Three instrument kinds — :class:`Counter` (monotone), :class:`Gauge`
(settable), :class:`Histogram` (fixed bucket boundaries) — with label
support, collected in a :class:`MetricsRegistry` that renders both the
Prometheus text exposition format (what the service's ``GET /metrics``
serves) and a JSON snapshot (what reports and benchmark records embed).

Instruments are get-or-create by name: registering the same (name, kind,
labels) twice returns the existing instrument, so library code can declare
its metrics at import time while services re-instantiate freely.  For
values that live elsewhere (the process-global distance counters, a
:class:`~repro.perf.stats.LatencyWindow`), *collectors* — callables invoked
at scrape time — absorb the existing accumulators as registered instruments
without double-keeping state.

Everything is thread-safe: instruments take a per-instrument lock on
update, the registry locks its tables on registration and render.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Iterable, Optional, Sequence

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram boundaries, tuned for sub-second cleaning latencies
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labels(labelnames: Sequence[str]) -> tuple:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names in {names!r}")
    return names


def _escape_label_value(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_labels(labels: dict) -> str:
    """``{a="x",b="y"}`` (empty string for no labels), keys in label order."""
    if not labels:
        return ""
    rendered = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels.items()
    )
    return "{" + rendered + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _Child:
    """One labelled series of an instrument."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0


class _CounterChild(_Child):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class _GaugeChild(_Child):
    __slots__ = ()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _HistogramChild:
    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple) -> None:
        self._lock = threading.Lock()
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # one overflow bucket (+Inf)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[index] += 1
                    return
            self.counts[-1] += 1

    def summary(self) -> dict:
        """JSON view: count, sum, mean and cumulative bucket counts."""
        with self._lock:
            counts = list(self.counts)
            total, count = self.sum, self.count
        cumulative, running = {}, 0
        for bound, bucket_count in zip(self.buckets, counts):
            running += bucket_count
            cumulative[_format_value(float(bound))] = running
        cumulative["+Inf"] = running + counts[-1]
        return {
            "count": count,
            "sum": round(total, 6),
            "mean": round(total / count, 6) if count else 0.0,
            "buckets": cumulative,
        }


class Instrument:
    """Base of the three instrument kinds: name, help, label fan-out."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labels(labelnames)
        self._lock = threading.Lock()
        self._children: dict = {}

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labels):
        """The child series for one label-value combination (created lazily)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
        return child

    def _default(self):
        """The unlabelled series (only for instruments declared label-free)."""
        if self.labelnames:
            raise ValueError(
                f"metric {self.name} is labelled {self.labelnames}; "
                f"use .labels(...)"
            )
        return self.labels()

    def samples(self) -> "list[tuple[dict, object]]":
        """``(labels_dict, child)`` pairs, in creation order."""
        with self._lock:
            items = list(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child) for key, child in items
        ]


class Counter(Instrument):
    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)


class Gauge(Instrument):
    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)


class Histogram(Instrument):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(later <= earlier for later, earlier in zip(bounds[1:], bounds)):
            raise ValueError("histogram buckets must be non-empty and increasing")
        self.buckets = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)


#: what a collector returns: families of already-measured samples.
#: Each family is ``{"name", "type" ("counter"|"gauge"), "help",
#: "samples": [(labels_dict, value), ...]}``.
Collector = Callable[[], Iterable[dict]]


class MetricsRegistry:
    """Holds instruments and collectors; renders Prometheus text and JSON."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: "dict[str, Instrument]" = {}
        self._collectors: "list[Collector]" = []

    # ------------------------------------------------------------------
    # registration (get-or-create)
    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, labelnames, **extra):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            instrument = cls(name, help, labelnames, **extra)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        instrument = self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )
        if instrument.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} is already registered with buckets "
                f"{instrument.buckets}"
            )
        return instrument

    def register_collector(self, collector: Collector) -> Collector:
        """Add a scrape-time value source (e.g. an existing accumulator)."""
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)
        return collector

    def instrument(self, name: str) -> Optional[Instrument]:
        with self._lock:
            return self._instruments.get(name)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def _families(self) -> "list[dict]":
        """Instrument state plus collector output, normalised to families."""
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        families = []
        for instrument in instruments:
            samples = [
                (labels, child) for labels, child in instrument.samples()
            ]
            families.append(
                {
                    "name": instrument.name,
                    "type": instrument.kind,
                    "help": instrument.help,
                    "samples": samples,
                }
            )
        for collector in collectors:
            for family in collector():
                families.append(dict(family))
        return families

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: "list[str]" = []
        for family in self._families():
            name, kind = family["name"], family["type"]
            # the exposition format wants backslash and newline escaped in help
            help_text = str(family["help"]).replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, value in family["samples"]:
                if kind == "histogram":
                    summary = value.summary()
                    for bound, count in summary["buckets"].items():
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = bound
                        lines.append(
                            f"{name}_bucket{format_labels(bucket_labels)} {count}"
                        )
                    lines.append(
                        f"{name}_sum{format_labels(labels)} "
                        f"{_format_value(summary['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{format_labels(labels)} {summary['count']}"
                    )
                else:
                    raw = value.value if isinstance(value, _Child) else value
                    lines.append(
                        f"{name}{format_labels(labels)} {_format_value(raw)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict:
        """JSON view: metric name → type/help/samples (histograms summarised)."""
        out: dict = {}
        for family in self._families():
            samples = []
            for labels, value in family["samples"]:
                if family["type"] == "histogram":
                    samples.append({"labels": labels, **value.summary()})
                else:
                    raw = value.value if isinstance(value, _Child) else value
                    samples.append({"labels": labels, "value": raw})
            out[family["name"]] = {
                "type": family["type"],
                "help": family["help"],
                "samples": samples,
            }
        return out


def parse_prometheus(text: str) -> dict:
    """Parse the text exposition format back to ``{sample_line_name: value}``.

    A deliberately strict mini-parser used by tests and the CI smoke gate:
    raises ``ValueError`` on any line that is neither a comment nor a valid
    ``name{labels} value`` sample.  Returns every sample keyed by its full
    name-plus-labels string.
    """
    sample_re = re.compile(
        r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
        r"(?P<labels>\{[^}]*\})?"
        r" (?P<value>[^ ]+)$"
    )
    out: dict = {}
    for line in text.splitlines():
        if not line.strip() or line.startswith("#"):
            continue
        match = sample_re.match(line)
        if match is None:
            raise ValueError(f"not a Prometheus sample line: {line!r}")
        value = match.group("value")
        out[match.group("name") + (match.group("labels") or "")] = (
            math.inf if value == "+Inf" else float(value)
        )
    return out
