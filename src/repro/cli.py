"""Shared command-line plumbing for the package's entry points.

``python -m repro.experiments`` and ``python -m repro.service`` are separate
programs but take the same operational flags; this module is the single
argparse *parent* both attach, so the flags stay spelled, defaulted and
documented identically:

* ``--log-level`` — stdlib logging threshold for the process,
* ``--seed`` — the workload-generation seed (experiments override their
  spec's seed with it; the service uses it for server-side workload
  instances).

Usage::

    parser = argparse.ArgumentParser(parents=[common_parent()], ...)
    args = parser.parse_args()
    configure_logging(args.log_level)
"""

from __future__ import annotations

import argparse
import logging

#: accepted ``--log-level`` spellings (stdlib level names, lowercased)
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")


def common_parent() -> argparse.ArgumentParser:
    """The shared ``--log-level`` / ``--seed`` parent parser.

    Returned with ``add_help=False`` so it composes as an argparse
    ``parents=[...]`` entry without clashing with the child's ``-h``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="warning",
        help="stdlib logging threshold (default: warning)",
    )
    parent.add_argument(
        "--seed",
        type=int,
        default=None,
        help="workload-generation seed (default: the spec's / service's own)",
    )
    return parent


def configure_logging(level: str) -> None:
    """Apply ``--log-level`` to the root logger (idempotent)."""
    logging.basicConfig(
        level=getattr(logging, level.upper()),
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
    )
    logging.getLogger().setLevel(getattr(logging, level.upper()))
