"""Stream sources: reproducible tuple streams for the streaming engine.

A source turns a table (or a whole synthetic workload, errors included) into
a sequence of :class:`~repro.streaming.delta.DeltaBatch` micro-batches.  Two
properties make them experiment-grade:

* **reproducible** — batches replay in ascending tuple-id order with the
  original tids preserved, so a streamed run is directly comparable to a
  batch run over the same table (the equivalence tests rely on this), and
* **ground-truth aware** — when the underlying table came from the error
  injector, each batch carries the slice of the injected-error ledger that
  belongs to its tuples, so the engine can track cumulative accuracy as the
  stream progresses.

:class:`WorkloadStreamSource` adapts the registered workload generators
(HAI / CAR / TPC-H / hospital-sample, plus anything added through
:func:`repro.workloads.register_workload`) into such streams.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import Optional

from repro.constraints.rules import Rule
from repro.dataset.table import Table
from repro.errors.groundtruth import GroundTruth
from repro.errors.injector import ErrorSpec
from repro.streaming.delta import DeltaBatch
from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.registry import get_workload_generator
from repro.workloads.sample import SampleHospitalWorkloadGenerator


@dataclass
class StreamBatch:
    """One emitted micro-batch: the deltas plus their ground-truth slice."""

    sequence: int
    deltas: DeltaBatch
    ground_truth: Optional[GroundTruth] = None

    def __len__(self) -> int:
        return len(self.deltas)


class TableStreamSource:
    """Replays an existing table as insert batches, original tids preserved."""

    def __init__(
        self,
        table: Table,
        batch_size: int,
        ground_truth: Optional[GroundTruth] = None,
    ):
        if batch_size < 1:
            raise ValueError("a stream source needs batch_size >= 1")
        self.table = table
        self.batch_size = batch_size
        self.ground_truth = ground_truth

    def __iter__(self) -> Iterator[StreamBatch]:
        tids = sorted(self.table.tids)
        for sequence, start in enumerate(range(0, len(tids), self.batch_size)):
            chunk = tids[start : start + self.batch_size]
            deltas = DeltaBatch.from_table(self.table, tids=chunk)
            yield StreamBatch(
                sequence=sequence,
                deltas=deltas,
                ground_truth=self._slice_ground_truth(chunk),
            )

    def __len__(self) -> int:
        """Number of batches the source will emit."""
        return -(-len(self.table.tids) // self.batch_size)

    def _slice_ground_truth(self, tids: list[int]) -> Optional[GroundTruth]:
        if self.ground_truth is None:
            return None
        members = set(tids)
        return GroundTruth(
            error for error in self.ground_truth if error.cell.tid in members
        )


class WorkloadStreamSource:
    """A registered workload (with injected errors) as a reproducible stream.

    Builds the clean table through the workload registry, corrupts it with
    the usual error injector, and replays the dirty table in micro-batches::

        source = WorkloadStreamSource("hai", tuples=600, batch_size=100)
        engine = StreamingMLNClean(source.rules, source.schema)
        engine.consume(source)
    """

    def __init__(
        self,
        dataset: str,
        tuples: Optional[int] = None,
        batch_size: int = 100,
        error_spec: Optional[ErrorSpec] = None,
        seed: int = 7,
    ):
        self.dataset = dataset
        generator = (
            get_workload_generator(dataset, tuples=tuples, seed=seed)
            if tuples is not None
            else get_workload_generator(dataset, seed=seed)
        )
        self.workload: Workload = generator.build()
        self.instance: WorkloadInstance = self.workload.make_instance(error_spec)
        self._table_source = TableStreamSource(
            self.instance.dirty, batch_size, self.instance.ground_truth
        )

    @property
    def rules(self) -> list[Rule]:
        return self.instance.rules

    @property
    def schema(self) -> list[str]:
        return self.instance.dirty.attributes

    @property
    def dirty(self) -> Table:
        """The full dirty table the stream replays (for batch comparisons)."""
        return self.instance.dirty

    @property
    def ground_truth(self) -> GroundTruth:
        return self.instance.ground_truth

    @property
    def batch_size(self) -> int:
        return self._table_source.batch_size

    def __iter__(self) -> Iterator[StreamBatch]:
        return iter(self._table_source)

    def __len__(self) -> int:
        return len(self._table_source)


#: re-exported for backward compatibility — the generator now lives with the
#: other workloads in :mod:`repro.workloads.sample`
__all__ = [
    "StreamBatch",
    "TableStreamSource",
    "WorkloadStreamSource",
    "SampleHospitalWorkloadGenerator",
]
