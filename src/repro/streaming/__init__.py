"""Incremental MLNClean for continuously arriving data.

Batch MLNClean assumes a static dirty table; this sub-package cleans
*micro-batches of tuple deltas* against an evolving one, re-deriving only
the state each batch invalidates:

* :mod:`repro.streaming.delta` — ``Insert`` / ``Update`` / ``Delete``
  records and the ``DeltaBatch`` micro-batch container,
* :mod:`repro.streaming.incremental_index` — the two-layer MLN index
  maintained per delta instead of rebuilt per run,
* :mod:`repro.streaming.cleaner` — :class:`StreamingMLNClean`, the
  micro-batch engine (block-granular Stage I, tuple-granular Stage II),
* :mod:`repro.streaming.window` — tumbling / sliding retention policies
  that evict expired tuples through the same delta path,
* :mod:`repro.streaming.source` — reproducible streams over the synthetic
  workload generators (errors included).

Replaying a table as deltas in ascending tuple-id order converges to the
same cleaned table as one batch run — see the module docs of
:mod:`repro.streaming.cleaner` for why, and ``tests/test_streaming.py``
for the equivalence proofs.
"""

from repro.streaming.cleaner import StreamingBatchReport, StreamingMLNClean
from repro.streaming.delta import (
    Delete,
    Delta,
    DeltaBatch,
    Insert,
    Update,
    delta_from_json_dict,
    delta_to_json_dict,
)
from repro.streaming.incremental_index import IncrementalMLNIndex
from repro.streaming.source import (
    SampleHospitalWorkloadGenerator,
    StreamBatch,
    TableStreamSource,
    WorkloadStreamSource,
)
from repro.streaming.window import SlidingWindow, TumblingWindow, WindowPolicy

__all__ = [
    "Delta",
    "DeltaBatch",
    "Insert",
    "Update",
    "Delete",
    "delta_from_json_dict",
    "delta_to_json_dict",
    "IncrementalMLNIndex",
    "StreamingMLNClean",
    "StreamingBatchReport",
    "WindowPolicy",
    "TumblingWindow",
    "SlidingWindow",
    "StreamBatch",
    "TableStreamSource",
    "WorkloadStreamSource",
    "SampleHospitalWorkloadGenerator",
]
