"""StreamingMLNClean: micro-batch incremental cleaning.

The batch pipeline (:class:`repro.core.pipeline.MLNClean`) re-derives
everything from scratch on every run: index, weights, Stage I, Stage II.
This engine instead keeps the whole cleaning state alive between micro-
batches and re-derives only what a batch's deltas invalidated:

1. **Index** — the raw two-layer index is maintained per delta
   (:class:`~repro.streaming.incremental_index.IncrementalMLNIndex`); the
   ``O(|B| × |T|)`` rebuild disappears.
2. **Stage I (AGP + RSC)** — a delta dirties specific groups of specific
   blocks; only the *affected blocks* are re-cleaned.  The block is the
   sound re-cleaning unit because RSC's weight learning is block-global
   (the Eq.-4 prior normalises by the block's total support), so any change
   inside a block can shift every weight of that block; blocks no delta
   touched keep their previous Stage-I result untouched.
3. **Stage II (FSCR)** — fusion is re-run only for the tuples whose fusion
   *inputs* changed: tuples whose γ values or weight changed in some
   re-cleaned block, tuples whose earlier fusion involved conflicts or
   substitutions against a re-cleaned block (their substitution pool may
   have changed), previously unfusable tuples covered by a re-cleaned
   block, and the batch's own tuples.  Everything else keeps its fusion.
4. **Deduplication** re-runs over the maintained repaired table (a cheap
   hash pass).

Affected-set tracking is exact, not heuristic: a tuple outside the set has
bit-identical fusion inputs, so re-running FSCR on it could not change its
row.  Combined with the canonical-order block clones of the incremental
index, replaying a table as deltas (in ascending tuple-id order) therefore
converges to exactly the cleaned table batch MLNClean produces — the
equivalence the streaming tests assert.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.constraints.rules import Rule
from repro.core.agp import AbnormalGroupProcessor, AGPOutcome
from repro.core.config import MLNCleanConfig
from repro.core.dedup import DeduplicationResult, remove_duplicates
from repro.core.fscr import FSCROutcome, FusionScoreResolver, TupleFusion
from repro.core.index import Block
from repro.core.report import CleaningReport
from repro.core.rsc import ReliabilityScoreCleaner, RSCOutcome
from repro.dataset.schema import Schema
from repro.dataset.table import Cell, Table
from repro.errors.groundtruth import ErrorType, GroundTruth, InjectedError
from repro.metrics.accuracy import RepairAccuracy, evaluate_repair
from repro.metrics.timing import TimingBreakdown
from repro.obs import ensure_tracer, span, stage_scope
from repro.streaming.delta import Delete, Delta, DeltaBatch, Insert, Update
from repro.detect.run import CleaningScope
from repro.detect.streaming import StreamDetection
from repro.streaming.incremental_index import (
    DirtiedGroups,
    IncrementalMLNIndex,
    merge_dirtied,
)
from repro.streaming.window import WindowPolicy

#: one tuple's post-Stage-I data version in one block: (γ values, γ weight)
Version = tuple[tuple[str, ...], float]


@dataclass
class StreamingBatchReport:
    """What one micro-batch changed and what it cost."""

    #: 0-based batch sequence number
    sequence: int
    #: inserts / updates / deletes applied (window evictions count as deletes)
    delta_counts: dict[str, int] = field(default_factory=dict)
    #: tuples the window policy expired this batch
    evicted_tids: list[int] = field(default_factory=list)
    #: blocks whose Stage I was re-run
    affected_blocks: list[str] = field(default_factory=list)
    #: groups the batch dirtied, per block
    dirtied_groups: DirtiedGroups = field(default_factory=dict)
    #: tuples whose fusion (Stage II) was re-resolved
    resolved_tids: list[int] = field(default_factory=list)
    #: tuples whose fusion attempt failed this batch (kept dirty)
    failed_tids: list[int] = field(default_factory=list)
    #: wall-clock per phase for this batch only
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)
    #: Stage-I outcomes of the re-cleaned blocks
    agp: AGPOutcome = field(default_factory=AGPOutcome)
    rsc: RSCOutcome = field(default_factory=RSCOutcome)
    #: tuples retained after the batch (post-eviction)
    tuples_total: int = 0
    #: cumulative repair accuracy, when a ground truth is being streamed
    accuracy: Optional[RepairAccuracy] = None

    @property
    def dirtied_group_count(self) -> int:
        return sum(len(keys) for keys in self.dirtied_groups.values())

    @property
    def runtime(self) -> float:
        return self.timings.total

    def describe(self) -> str:
        """A one-line human-readable summary (used by the examples)."""
        counts = ", ".join(f"{k}={v}" for k, v in self.delta_counts.items() if v)
        line = (
            f"batch {self.sequence}: {counts or 'no deltas'}"
            f" | blocks re-cleaned {len(self.affected_blocks)}"
            f" | groups dirtied {self.dirtied_group_count}"
            f" | tuples re-fused {len(self.resolved_tids)}"
            f" | retained {self.tuples_total}"
            f" | {self.runtime:.3f}s"
        )
        if self.accuracy is not None:
            line += f" | f1 {self.accuracy.f1:.3f}"
        return line


class StreamingMLNClean:
    """Incremental MLNClean over micro-batches of tuple deltas.

    Typical use::

        engine = StreamingMLNClean(rules, schema=["HN", "CT", "ST", "PN"])
        for batch in source:
            report = engine.apply_batch(batch.deltas, batch.ground_truth)
            print(report.describe())
        clean_table = engine.cleaned
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        schema: Union[Schema, Sequence[str]],
        config: Optional[MLNCleanConfig] = None,
        window: Optional[WindowPolicy] = None,
        detectors: Optional[Sequence] = None,
    ):
        if not rules:
            raise ValueError("StreamingMLNClean needs at least one integrity constraint")
        self.rules = list(rules)
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        self.config = config or MLNCleanConfig()
        self.window = window
        # Incremental re-detection: per tick, only the dirtied rules /
        # touched tuples are re-checked (table-granularity detectors fall
        # back to a full pass).  Exact-or-prune per tick: a detection that
        # covers the retained table disables scoping for that tick.
        self._detect = (
            StreamDetection(detectors, self.rules) if detectors is not None else None
        )
        self._detected = None

        self._dirty = Table(self.schema, name="stream")
        self._repaired = Table(self.schema, name="stream-repaired")
        self._cleaned: Table = self._repaired
        self._index = IncrementalMLNIndex(self.rules)
        # The distance engine persists across micro-batches: re-cleaning a
        # dirtied block re-reads almost all of its γ-pair distances from the
        # cache.  Value tracking reference-counts every retained tuple's
        # values, so window eviction invalidates exactly the cache entries of
        # values that left the stream.
        self._engine = self.config.engine(track_values=True)
        if self._engine.supports_qgram:
            # Built empty here, then maintained by the delta hooks — the
            # streaming analog of the batch pipeline's qgram-index stage.
            self._index.enable_qgram(self._engine.qgram_size)
        self._agp = AbnormalGroupProcessor(self.config, engine=self._engine)
        self._rsc = ReliabilityScoreCleaner(self.config, engine=self._engine)
        self._fscr = FusionScoreResolver(self.config, engine=self._engine)

        #: post-Stage-I state of every block, in rule order (FSCR consumes it)
        self._stage1: dict[str, Block] = {rule.name: Block(rule) for rule in self.rules}
        #: per block: tid → (γ values, weight) after the last Stage-I run
        self._block_versions: dict[str, dict[int, Version]] = {
            rule.name: {} for rule in self.rules
        }
        self._fusions: dict[int, TupleFusion] = {}
        self._failed: set[int] = set()
        self._dedup: Optional[DeduplicationResult] = None
        self._ground_truth = GroundTruth()
        self._timings = TimingBreakdown()
        self._agp_total = AGPOutcome()
        self._rsc_total = RSCOutcome()
        self._batches = 0

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    @property
    def dirty(self) -> Table:
        """The current (as-arrived) table, deltas applied, uncleaned."""
        return self._dirty

    @property
    def repaired(self) -> Table:
        """The repaired table with every retained tuple still present."""
        return self._repaired

    @property
    def cleaned(self) -> Table:
        """The repaired table after duplicate elimination."""
        return self._cleaned

    @property
    def index(self) -> IncrementalMLNIndex:
        return self._index

    @property
    def engine(self):
        """The persistent distance engine (cache + counters) of this stream."""
        return self._engine

    @property
    def batches_applied(self) -> int:
        return self._batches

    @property
    def detection(self):
        """The :class:`~repro.detect.DirtyCells` of the last tick.

        ``None`` when the engine runs without detectors (or before the
        first batch).
        """
        return self._detected

    @property
    def detected_cells(self) -> Optional[int]:
        """Detected-cell count of the last tick (promoted to run metrics)."""
        return None if self._detected is None else self._detected.count

    def __len__(self) -> int:
        return len(self._dirty)

    # ------------------------------------------------------------------
    # the micro-batch step
    # ------------------------------------------------------------------
    def apply_batch(
        self,
        batch: Union[DeltaBatch, Iterable[Delta]],
        ground_truth: Optional[GroundTruth] = None,
    ) -> StreamingBatchReport:
        """Apply one micro-batch of deltas and re-clean what it invalidated.

        ``ground_truth`` extends the engine's cumulative injected-error
        ledger (sources that replay corrupted workloads provide one per
        batch); when present, the cumulative repair accuracy is attached to
        the report.
        """
        if not isinstance(batch, DeltaBatch):
            batch = DeltaBatch(list(batch))
        self._validate_batch(batch)
        if ground_truth is not None:
            # merged before the tick so ledger-driven detectors (perfect)
            # see the batch's own injected errors
            self._ground_truth = self._ground_truth.merge(ground_truth)
        report = StreamingBatchReport(sequence=self._batches)
        timings = report.timings
        dirtied: DirtiedGroups = {}

        with span(
            "stream.tick", sequence=self._batches, deltas=len(batch)
        ) as tick_span:
            with stage_scope(timings, "streaming", "delta"):
                inserted, updated, deleted = self._apply_deltas(batch, dirtied)
                report.evicted_tids = self._apply_window(
                    inserted, deleted, dirtied
                )
            report.delta_counts = {
                "inserts": len(inserted),
                "updates": len(updated),
                "deletes": len(deleted) + len(report.evicted_tids),
            }
            report.dirtied_groups = {
                name: set(keys) for name, keys in dirtied.items()
            }

            # Incremental re-detection on the dirtied blocks / touched
            # tuples only; exact-or-prune per tick (a covering detection
            # leaves this tick's cleaning unscoped, i.e. today's exact path).
            scope = None
            if self._detect is not None:
                with stage_scope(timings, "streaming", "detect") as detect_span:
                    self._detected = self._detect.update(
                        self._dirty,
                        dirtied_rules=[
                            name for name, keys in dirtied.items() if keys
                        ],
                        touched_tids=inserted + updated,
                        removed_tids=deleted + report.evicted_tids,
                        ground_truth=self._ground_truth
                        if len(self._ground_truth)
                        else None,
                    )
                    detect_span.set(cells=self._detected.count)
                if not self._detected.covers(self._dirty):
                    scope = CleaningScope(self._detected, self._dirty)

            # Stage I on the affected blocks only (under a scope, only the
            # affected blocks that contain detected cells are re-cleaned;
            # the rest still get their canonical post-delta structure).
            affected = [name for name in self._stage1 if dirtied.get(name)]
            report.affected_blocks = affected
            for name in affected:
                block = self._index.canonical_block(name)
                if scope is None or scope.selects_block(block):
                    group_filter = None if scope is None else scope.selects_group
                    with stage_scope(timings, "streaming", "agp", block=name):
                        report.agp.extend(
                            self._agp.process_block(block, group_filter=group_filter)
                        )
                    with stage_scope(timings, "streaming", "rsc", block=name):
                        report.rsc.extend(
                            self._rsc.clean_block(block, group_filter=group_filter)
                        )
                self._stage1[name] = block

            # Stage II for the tuples whose fusion inputs changed (under a
            # scope, only the affected tuples that hold a detected cell).
            with stage_scope(timings, "streaming", "fscr"):
                affected_tids = self._affected_tuples(
                    affected, inserted, updated
                )
                if scope is not None:
                    affected_tids &= scope.tids
                resolved, failed = self._refuse(affected_tids)
            report.resolved_tids = resolved
            report.failed_tids = failed

            if self.config.remove_duplicates:
                with stage_scope(timings, "streaming", "dedup"):
                    self._dedup = remove_duplicates(
                        self._repaired, self._engine
                    )
                self._cleaned = self._dedup.deduplicated
            else:
                self._dedup = None
                self._cleaned = self._repaired
            report.tuples_total = len(self._dirty)
            tick_span.set(
                affected_blocks=len(affected),
                resolved=len(resolved),
                retained=report.tuples_total,
            )

        if self.config.instrument and len(self._ground_truth):
            report.accuracy = self.accuracy()

        self._timings = self._timings.merge(timings)
        self._agp_total.extend(report.agp)
        self._rsc_total.extend(report.rsc)
        self._batches += 1
        return report

    def consume(self, stream: Iterable) -> list[StreamingBatchReport]:
        """Drain a stream source, applying every batch it yields.

        Accepts any iterable of :class:`DeltaBatch` or of objects with
        ``deltas`` / ``ground_truth`` attributes (the stream sources of
        :mod:`repro.streaming.source`).
        """
        reports = []
        with ensure_tracer(self.config.trace):
            for item in stream:
                deltas = getattr(item, "deltas", item)
                ground_truth = getattr(item, "ground_truth", None)
                reports.append(self.apply_batch(deltas, ground_truth))
        return reports

    # ------------------------------------------------------------------
    # cumulative results
    # ------------------------------------------------------------------
    def accuracy(self) -> Optional[RepairAccuracy]:
        """Cumulative repair accuracy against the streamed ground truth."""
        if not len(self._ground_truth):
            return None
        return evaluate_repair(self._dirty, self._repaired, self._ground_truth)

    def report(self) -> CleaningReport:
        """A cumulative :class:`CleaningReport` over everything streamed so far.

        Timings accumulate across batches; the stage outcomes aggregate the
        re-cleaning work actually performed (not what a batch run would have
        done once).
        """
        fscr = FSCROutcome(
            repaired=self._repaired,
            fusions=dict(self._fusions),
            failed_tuples=sorted(self._failed),
        )
        return CleaningReport(
            dirty=self._dirty,
            repaired=self._repaired,
            cleaned=self._cleaned,
            timings=self._timings,
            agp=self._agp_total,
            rsc=self._rsc_total,
            fscr=fscr,
            dedup=self._dedup,
            accuracy=self.accuracy(),
            backend="streaming",
            details=self,
        )

    # ------------------------------------------------------------------
    # state snapshot / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """A JSON-safe snapshot from which :meth:`restore_state` rebuilds
        an equivalent engine.

        Only the *path-dependent* state is serialized: the retained dirty
        rows (in arrival order), the window bookkeeping, tid allocators,
        the batch counter, the cumulative Stage-I outcome accumulators and
        the streamed ground-truth ledger.  Everything else — index, block
        versions, fusions, the repaired/cleaned tables, the distance cache
        — is content-deterministic (the affected-set tracking is exact, see
        the module docstring) and is re-derived by replaying the retained
        rows through the normal apply path on restore.
        """
        return {
            "format": 1,
            "schema": list(self.schema),
            "batches": self._batches,
            "next_tid": self._dirty.next_tid,
            "rows": [[row.tid, [row[a] for a in self.schema]] for row in self._dirty],
            "window": None if self.window is None else self.window.state_dict(),
            "agp_total": self._agp_total.as_json_dict(),
            "rsc_total": self._rsc_total.as_json_dict(),
            "ground_truth": [
                {
                    "tid": error.cell.tid,
                    "attribute": error.cell.attribute,
                    "clean": error.clean_value,
                    "dirty": error.dirty_value,
                    "type": error.error_type.value,
                }
                for error in self._ground_truth
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild this (fresh) engine from a :meth:`state_dict` payload.

        The retained rows are bootstrapped through :meth:`apply_batch` as
        one synthetic insert batch with the window detached (the rows
        already survived eviction), then the path-dependent accumulators
        are overwritten from the snapshot.  Timings restart at zero —
        wall-clock is masked out of report signatures anyway.
        """
        if self._batches or len(self._dirty):
            raise ValueError("restore_state needs a freshly constructed engine")
        if int(state.get("format", 0)) != 1:
            raise ValueError(f"unsupported engine state format {state.get('format')!r}")
        if list(self.schema) != list(state["schema"]):
            raise ValueError("engine state was taken under a different schema")
        window, self.window = self.window, None
        try:
            rows = state["rows"]
            if rows:
                self.apply_batch(
                    DeltaBatch(
                        [
                            Insert(
                                values=dict(zip(self.schema, values)), tid=int(tid)
                            )
                            for tid, values in rows
                        ]
                    )
                )
        finally:
            self.window = window
        if self.window is not None:
            if state["window"] is None:
                raise ValueError("engine state has no window bookkeeping")
            self.window.restore_state(state["window"])
        elif state["window"] is not None:
            raise ValueError("engine state expects a window policy")
        next_tid = int(state["next_tid"])
        # both tables share the stream's tid allocator
        self._dirty.reserve_tids(next_tid)
        self._repaired.reserve_tids(next_tid)
        self._batches = int(state["batches"])
        self._agp_total = AGPOutcome.from_json_dict(state["agp_total"])
        self._rsc_total = RSCOutcome.from_json_dict(state["rsc_total"])
        self._ground_truth = GroundTruth(
            InjectedError(
                cell=Cell(int(e["tid"]), str(e["attribute"])),
                clean_value=str(e["clean"]),
                dirty_value=str(e["dirty"]),
                error_type=ErrorType(e["type"]),
            )
            for e in state["ground_truth"]
        )
        self._timings = TimingBreakdown()

    # ------------------------------------------------------------------
    # delta application
    # ------------------------------------------------------------------
    def _validate_batch(self, batch: DeltaBatch) -> None:
        """Reject malformed batches before any state is mutated."""
        present = set(self._dirty.tids)
        # Mirror Table.append's tid assignment so collisions between
        # auto-assigned and explicit tids are caught up front too.
        next_tid = self._dirty.next_tid
        for delta in batch:
            if isinstance(delta, Insert):
                missing = [a for a in self.schema if a not in delta.values]
                if missing:
                    raise KeyError(f"insert is missing attributes {missing!r}")
                extra = [a for a in delta.values if a not in self.schema]
                if extra:
                    raise KeyError(f"insert has attributes outside the schema: {extra!r}")
                tid = delta.tid if delta.tid is not None else next_tid
                if tid in present:
                    raise ValueError(f"insert reuses live tuple id {tid}")
                present.add(tid)
                next_tid = max(next_tid, tid + 1)
            elif isinstance(delta, Update):
                if delta.tid not in present:
                    raise KeyError(f"update targets unknown tuple id {delta.tid}")
                extra = [a for a in delta.changes if a not in self.schema]
                if extra:
                    raise KeyError(f"update has attributes outside the schema: {extra!r}")
            elif isinstance(delta, Delete):
                if delta.tid not in present:
                    raise KeyError(f"delete targets unknown tuple id {delta.tid}")
                present.discard(delta.tid)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unsupported delta {delta!r}")

    def _apply_deltas(
        self, batch: DeltaBatch, dirtied: DirtiedGroups
    ) -> tuple[list[int], list[int], list[int]]:
        """Apply the deltas to the table, index and repaired table."""
        inserted: list[int] = []
        updated: list[int] = []
        deleted: list[int] = []
        for delta in batch:
            if isinstance(delta, Insert):
                row = self._dirty.append(delta.values, tid=delta.tid)
                values = row.as_dict()
                merge_dirtied(dirtied, self._index.add_tuple(row.tid, values))
                self._repaired.append(values, tid=row.tid)
                self._engine.retain(values.values())
                inserted.append(row.tid)
            elif isinstance(delta, Update):
                old_values = self._dirty.row(delta.tid).as_dict()
                new_values = dict(old_values)
                new_values.update(
                    {attribute: str(value) for attribute, value in delta.changes.items()}
                )
                merge_dirtied(
                    dirtied,
                    self._index.update_tuple(delta.tid, old_values, new_values),
                )
                for attribute, value in delta.changes.items():
                    self._dirty.set_value(delta.tid, attribute, value)
                self._engine.retain(new_values.values())
                self._engine.release(old_values.values())
                updated.append(delta.tid)
            else:
                self._remove_tuple(delta.tid, dirtied)
                deleted.append(delta.tid)
        return inserted, updated, deleted

    def _apply_window(
        self, inserted: list[int], deleted: list[int], dirtied: DirtiedGroups
    ) -> list[int]:
        """Let the window policy expire old tuples through the delete path."""
        if self.window is None:
            return []
        if deleted:
            self.window.forget(deleted)
        # A tuple inserted and deleted within the same batch must never
        # enter the window — it would be a stale tid at eviction time.
        live_inserts = [tid for tid in inserted if self._dirty.has_tid(tid)]
        evicted = self.window.observe(live_inserts)
        for tid in evicted:
            self._remove_tuple(tid, dirtied)
        return evicted

    def _remove_tuple(self, tid: int, dirtied: DirtiedGroups) -> None:
        values = self._dirty.row(tid).as_dict()
        merge_dirtied(dirtied, self._index.remove_tuple(tid, values))
        self._engine.release(values.values())
        self._dirty.remove(tid)
        if self._repaired.has_tid(tid):
            self._repaired.remove(tid)
        self._fusions.pop(tid, None)
        self._failed.discard(tid)

    # ------------------------------------------------------------------
    # selective Stage II
    # ------------------------------------------------------------------
    def _affected_tuples(
        self, affected_blocks: list[str], inserted: list[int], updated: list[int]
    ) -> set[int]:
        """The tuples whose fusion inputs this batch (possibly) changed.

        * version diff — a tuple's γ values or weight changed in a
          re-cleaned block (covers gained and lost coverage as well),
        * conflict-prone fusions — an earlier fusion used substitutions or
          hit conflicts, and the tuple touches a re-cleaned block whose
          candidate pool may have shifted,
        * previously unfusable tuples touching a re-cleaned block,
        * the batch's own inserts and updates (an update can change the
          repaired row even when no γ identity moved).
        """
        affected: set[int] = set(inserted) | set(updated)
        for name in affected_blocks:
            new_versions = self._versions_of(self._stage1[name])
            old_versions = self._block_versions[name]
            for tid in new_versions.keys() | old_versions.keys():
                if new_versions.get(tid) != old_versions.get(tid):
                    affected.add(tid)
            self._block_versions[name] = new_versions
        if affected_blocks:
            coverage = [self._block_versions[name] for name in affected_blocks]
            for tid, fusion in self._fusions.items():
                if not fusion.substitutions and not fusion.conflicted_attributes:
                    continue
                if any(tid in versions for versions in coverage):
                    affected.add(tid)
            for tid in self._failed:
                if any(tid in versions for versions in coverage):
                    affected.add(tid)
        return {tid for tid in affected if self._dirty.has_tid(tid)}

    @staticmethod
    def _versions_of(block: Block) -> dict[int, Version]:
        """tid → (γ values, weight) for one post-Stage-I block."""
        versions: dict[int, Version] = {}
        for group in block.group_list:
            for piece in group.gammas:
                for tid in piece.tids:
                    versions[tid] = (piece.values, piece.weight)
        return versions

    def _refuse(self, affected_tids: set[int]) -> tuple[list[int], list[int]]:
        """Re-run FSCR for the affected tuples and patch the repaired table."""
        if not affected_tids:
            return [], []
        live = [tid for tid in self._dirty.tids if tid in affected_tids]
        subset = self._dirty.subset(live, name="stream-delta")
        blocks = [self._stage1[rule.name] for rule in self.rules]
        outcome = self._fscr.resolve(subset, blocks)
        failed = set(outcome.failed_tuples)
        for tid in live:
            fused_row = outcome.repaired.row(tid).as_dict()
            for attribute, value in fused_row.items():
                self._repaired.set_value(tid, attribute, value)
            if tid in outcome.fusions:
                self._fusions[tid] = outcome.fusions[tid]
                self._failed.discard(tid)
            else:
                self._fusions.pop(tid, None)
                if tid in failed:
                    self._failed.add(tid)
                else:
                    self._failed.discard(tid)
        return live, sorted(failed)
