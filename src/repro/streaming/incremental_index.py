"""Incremental maintenance of the two-layer MLN index.

Batch MLNClean rebuilds the index from scratch — lines 1-13 of Algorithm 1,
``O(|B| × |T|)`` — before every run.  Under a stream of tuple deltas that
cost is paid per micro-batch, which dwarfs the size of the change.  This
module keeps one *raw* (pre-cleaning) index alive across batches and applies
each delta directly:

* an :class:`~repro.streaming.delta.Insert` adds the tuple's γ to every
  covering block (creating groups/γs on demand),
* a :class:`~repro.streaming.delta.Delete` detaches the tuple from its γ in
  every block, dropping γs and groups that become empty,
* an :class:`~repro.streaming.delta.Update` re-homes the γ only in blocks
  whose rule mentions a changed attribute (identity-preserving updates are
  free).

Support counts ``c(γ)`` stay exact because γ membership is maintained per
tuple.  The index also records which groups each operation dirtied, so the
streaming cleaner can re-run Stage I only where something changed.

Cleaning is destructive (AGP merges groups, RSC rewrites γs), so the raw
index is never cleaned in place.  Instead :meth:`IncrementalMLNIndex.canonical_block`
emits a fresh clone of one block with groups, γs and tuple lists in
*canonical order* — ascending first-occurrence (minimum tid) order.  For a
table whose tuple ids ascend in insertion order this is exactly the block
:meth:`repro.core.index.MLNIndex.build` would construct, so Stage I over the
clone reproduces the batch pipeline's result bit for bit regardless of the
delta history that produced the index.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence

from repro.constraints.rules import Rule
from repro.core.index import Block, DataPiece, Group, MLNIndex
from repro.dataset.table import Table

#: which groups of which blocks an operation touched: block name → reason keys
DirtiedGroups = dict[str, set[tuple[str, ...]]]


def merge_dirtied(target: DirtiedGroups, extra: DirtiedGroups) -> None:
    """Fold one dirtied-group map into another (in place)."""
    for name, keys in extra.items():
        target.setdefault(name, set()).update(keys)


class IncrementalMLNIndex:
    """A two-layer MLN index maintained under tuple deltas."""

    def __init__(self, rules: Sequence[Rule]):
        if not rules:
            raise ValueError("an MLN index needs at least one rule")
        self._index = MLNIndex({rule.name: Block(rule) for rule in rules})

    @classmethod
    def from_table(cls, table: Table, rules: Sequence[Rule]) -> "IncrementalMLNIndex":
        """Bootstrap the index from an existing table (one add per tuple)."""
        index = cls(rules)
        for row in table:
            index.add_tuple(row.tid, row.as_dict())
        return index

    # ------------------------------------------------------------------
    # delta operations
    # ------------------------------------------------------------------
    def add_tuple(self, tid: int, values: dict[str, str]) -> DirtiedGroups:
        """Insert one tuple; returns the groups that gained a tuple."""
        return {
            name: {piece.reason_values}
            for name, piece in self._index.add_tuple(tid, values).items()
        }

    def remove_tuple(self, tid: int, values: Mapping[str, str]) -> DirtiedGroups:
        """Detach one tuple (with its current values); returns shrunk groups."""
        return {
            name: {piece.reason_values}
            for name, piece in self._index.remove_tuple(tid, values).items()
        }

    def update_tuple(
        self,
        tid: int,
        old_values: Mapping[str, str],
        new_values: dict[str, str],
    ) -> DirtiedGroups:
        """Re-home one tuple; returns both the vacated and the entered groups.

        Blocks whose γ identity is unchanged by the update are untouched and
        do not appear in the result.
        """
        dirtied: DirtiedGroups = {}
        touched = self._index.update_tuple(tid, old_values, new_values)
        for name, (old_piece, new_piece) in touched.items():
            keys = dirtied.setdefault(name, set())
            if old_piece is not None:
                keys.add(old_piece.reason_values)
            if new_piece is not None:
                keys.add(new_piece.reason_values)
        return dirtied

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def blocks(self) -> dict[str, Block]:
        return self._index.blocks

    @property
    def block_list(self) -> list[Block]:
        return self._index.block_list

    def block(self, rule_name: str) -> Block:
        return self._index.block(rule_name)

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._index)

    def statistics(self) -> dict[str, dict[str, int]]:
        return self._index.statistics()

    def enable_qgram(self, q: int) -> None:
        """Build the per-block q-gram indexes; delta ops maintain them.

        The streaming delta hooks all bottom out in
        :meth:`repro.core.index.Block.add_tuple` /
        :meth:`~repro.core.index.Block.remove_tuple`, which register and
        unregister γ values, so the postings stay current across
        micro-batches without ever rebuilding.
        """
        self._index.enable_qgram(q)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Incremental{self._index!r}"

    # ------------------------------------------------------------------
    # canonical clones for (destructive) Stage-I cleaning
    # ------------------------------------------------------------------
    def canonical_block(self, rule_name: str) -> Block:
        """A fresh, mutation-safe clone of one block in canonical order.

        Groups are ordered by the minimum tuple id they hold, γs within a
        group likewise, and every γ's tuple list ascends — the order a full
        table scan in ascending tid order would have produced.  Weights are
        reset to zero, as in a freshly built index.
        """
        source = self._index.block(rule_name)
        clone = Block(source.rule)
        # The clone shares the source block's q-gram index: cleaning the
        # clone never registers values (its groups are filled directly, not
        # via add_tuple), and queries against a superset of live values are
        # safe by the index's staleness contract.
        clone.qgram_index = source.qgram_index
        groups = sorted(source.groups.values(), key=_group_first_tid)
        for group in groups:
            new_group = Group(group.key)
            clone.groups[group.key] = new_group
            for piece in sorted(group.pieces.values(), key=_piece_first_tid):
                new_piece = DataPiece(
                    piece.rule,
                    piece.reason_values,
                    piece.result_values,
                    sorted(piece.tids),
                )
                new_group.pieces[new_piece.key] = new_piece
        return clone


def _piece_first_tid(piece: DataPiece) -> int:
    return min(piece.tids)


def _group_first_tid(group: Group) -> int:
    return min(min(piece.tids) for piece in group.pieces.values())
