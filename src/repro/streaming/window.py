"""Window policies: bounded retention for unbounded streams.

A stream that never forgets grows without bound, and with it the MLN index
and every per-batch cleaning step.  A window policy decides, as tuples
arrive, which old tuples have *expired*; the streaming engine evicts expired
tuples through the same delta path as user-issued deletes, so the index,
the repaired table and the version caches all stay consistent.

Both policies here are count-based (the stream's arrival order is its
clock):

* :class:`TumblingWindow` — the stream is cut into consecutive spans of
  ``size`` arrivals; when a new span opens, every tuple of the previous
  spans is evicted at once.
* :class:`SlidingWindow` — the last ``size`` arrivals are retained; each
  arrival beyond that evicts the oldest retained tuple.

Policies are engine-agnostic: they only observe tuple ids and report
expirations, so they can be unit-tested (and reused) in isolation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from collections.abc import Iterable


class WindowPolicy(ABC):
    """Decides which tuples expire as new ones arrive."""

    #: registry key; every concrete policy sets one (used by snapshots)
    kind: str = ""

    @abstractmethod
    def observe(self, arrivals: Iterable[int]) -> list[int]:
        """Feed newly arrived tuple ids; returns the tuple ids that expired."""

    @abstractmethod
    def forget(self, tids: Iterable[int]) -> None:
        """Drop tuples evicted externally (user deletes) from the bookkeeping."""

    @property
    @abstractmethod
    def retained(self) -> list[int]:
        """The tuple ids the window currently keeps, oldest first."""

    @abstractmethod
    def state_dict(self) -> dict:
        """JSON-safe snapshot of the policy's bookkeeping (includes ``kind``)."""

    @abstractmethod
    def restore_state(self, state: dict) -> None:
        """Overwrite the bookkeeping from a :meth:`state_dict` payload."""


class TumblingWindow(WindowPolicy):
    """Non-overlapping spans of ``size`` arrivals; spans expire wholesale."""

    kind = "tumbling"

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("a tumbling window needs size >= 1")
        self.size = size
        self._arrived = 0
        self._current: list[int] = []

    def observe(self, arrivals: Iterable[int]) -> list[int]:
        expired: list[int] = []
        for tid in arrivals:
            if self._arrived and self._arrived % self.size == 0:
                # A new span opens: the previous span leaves the window.
                expired.extend(self._current)
                self._current = []
            self._current.append(tid)
            self._arrived += 1
        return expired

    def forget(self, tids: Iterable[int]) -> None:
        drop = set(tids)
        self._current = [tid for tid in self._current if tid not in drop]

    @property
    def retained(self) -> list[int]:
        return list(self._current)

    def state_dict(self) -> dict:
        return {
            "kind": self.kind,
            "size": self.size,
            "arrived": self._arrived,
            "retained": list(self._current),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("kind") != self.kind:
            raise ValueError(f"window state is {state.get('kind')!r}, not {self.kind!r}")
        if int(state["size"]) != self.size:
            raise ValueError("window state was taken with a different size")
        self._arrived = int(state["arrived"])
        self._current = [int(tid) for tid in state["retained"]]


class SlidingWindow(WindowPolicy):
    """The most recent ``size`` arrivals; the oldest expire one by one."""

    kind = "sliding"

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("a sliding window needs size >= 1")
        self.size = size
        self._window: deque[int] = deque()

    def observe(self, arrivals: Iterable[int]) -> list[int]:
        expired: list[int] = []
        for tid in arrivals:
            self._window.append(tid)
            while len(self._window) > self.size:
                expired.append(self._window.popleft())
        return expired

    def forget(self, tids: Iterable[int]) -> None:
        drop = set(tids)
        self._window = deque(tid for tid in self._window if tid not in drop)

    @property
    def retained(self) -> list[int]:
        return list(self._window)

    def state_dict(self) -> dict:
        return {
            "kind": self.kind,
            "size": self.size,
            "retained": list(self._window),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("kind") != self.kind:
            raise ValueError(f"window state is {state.get('kind')!r}, not {self.kind!r}")
        if int(state["size"]) != self.size:
            raise ValueError("window state was taken with a different size")
        self._window = deque(int(tid) for tid in state["retained"])


#: registry used by snapshot restore to rebuild a policy from its state
WINDOW_KINDS: dict[str, type] = {
    TumblingWindow.kind: TumblingWindow,
    SlidingWindow.kind: SlidingWindow,
}


def window_from_state(state: dict) -> WindowPolicy:
    """Rebuild a window policy from a :meth:`WindowPolicy.state_dict` payload."""
    kind = state.get("kind")
    if kind not in WINDOW_KINDS:
        raise ValueError(f"unknown window kind {kind!r}")
    policy = WINDOW_KINDS[kind](int(state["size"]))
    policy.restore_state(state)
    return policy
