"""Tuple deltas: the unit of change of the streaming MLNClean engine.

A batch pipeline sees one immutable dirty table; a streaming pipeline sees a
*sequence of deltas* against an evolving table.  Three kinds of change cover
every stream the engine supports:

* :class:`Insert` — a new tuple arrives (the common case for append-only
  sources such as logs or sensor feeds),
* :class:`Update` — some attribute values of an existing tuple change (late
  corrections, upstream re-deliveries),
* :class:`Delete` — a tuple leaves the relation (retention policies; the
  window policies of :mod:`repro.streaming.window` emit these).

A :class:`DeltaBatch` groups consecutive deltas into the micro-batch the
engine cleans in one step.  Batches are plain data: they carry no reference
to the engine's state, so they can be produced by any source, serialised, or
replayed.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.dataset.table import Table


@dataclass(frozen=True)
class Insert:
    """A new tuple with its full attribute assignment.

    ``tid`` may be left ``None`` to let the engine's table assign the next
    free tuple id; sources that replay an existing table pass the original
    tids through so downstream joins (and ground-truth ledgers) stay valid.
    """

    values: Mapping[str, str]
    tid: Optional[int] = None


@dataclass(frozen=True)
class Update:
    """A partial re-assignment of an existing tuple's attribute values."""

    tid: int
    changes: Mapping[str, str]


@dataclass(frozen=True)
class Delete:
    """Removal of an existing tuple."""

    tid: int


Delta = Union[Insert, Update, Delete]


@dataclass
class DeltaBatch:
    """One micro-batch of deltas, applied and cleaned as a unit."""

    deltas: list[Delta] = field(default_factory=list)

    def add(self, delta: Delta) -> None:
        self.deltas.append(delta)

    @property
    def inserts(self) -> list[Insert]:
        return [d for d in self.deltas if isinstance(d, Insert)]

    @property
    def updates(self) -> list[Update]:
        return [d for d in self.deltas if isinstance(d, Update)]

    @property
    def deletes(self) -> list[Delete]:
        return [d for d in self.deltas if isinstance(d, Delete)]

    def counts(self) -> dict[str, int]:
        """Number of deltas per kind (for reports)."""
        return {
            "inserts": len(self.inserts),
            "updates": len(self.updates),
            "deletes": len(self.deletes),
        }

    def __len__(self) -> int:
        return len(self.deltas)

    def __iter__(self) -> Iterator[Delta]:
        return iter(self.deltas)

    def __bool__(self) -> bool:
        return bool(self.deltas)

    @classmethod
    def from_records(
        cls, records: Iterable[Mapping[str, str]], start_tid: Optional[int] = None
    ) -> "DeltaBatch":
        """A batch of inserts from plain records.

        ``start_tid`` assigns consecutive explicit tids from that offset;
        otherwise the engine assigns tids on arrival.
        """
        batch = cls()
        for offset, record in enumerate(records):
            tid = None if start_tid is None else start_tid + offset
            batch.add(Insert(values=dict(record), tid=tid))
        return batch

    @classmethod
    def from_table(cls, table: Table, tids: Optional[Iterable[int]] = None) -> "DeltaBatch":
        """A batch of inserts replaying (part of) an existing table.

        Original tuple ids are preserved so a replayed stream is directly
        comparable to a batch run over the same table.
        """
        batch = cls()
        selected = list(tids) if tids is not None else table.tids
        for tid in selected:
            batch.add(Insert(values=table.row(tid).as_dict(), tid=tid))
        return batch

    def to_json_list(self) -> list:
        """All deltas as JSON-safe dictionaries (see :func:`delta_to_json_dict`)."""
        return [delta_to_json_dict(delta) for delta in self.deltas]

    @classmethod
    def from_json_list(cls, data: Iterable[Mapping]) -> "DeltaBatch":
        """Rebuild a batch from decoded JSON deltas (the service's wire form)."""
        return cls([delta_from_json_dict(item) for item in data])


# ----------------------------------------------------------------------
# JSON codec: how deltas travel over the wire
# ----------------------------------------------------------------------
def delta_to_json_dict(delta: Delta) -> dict:
    """One delta as a JSON-safe dictionary, tagged by an ``op`` field."""
    if isinstance(delta, Insert):
        encoded: dict = {"op": "insert", "values": dict(delta.values)}
        if delta.tid is not None:
            encoded["tid"] = delta.tid
        return encoded
    if isinstance(delta, Update):
        return {"op": "update", "tid": delta.tid, "changes": dict(delta.changes)}
    if isinstance(delta, Delete):
        return {"op": "delete", "tid": delta.tid}
    raise TypeError(f"unsupported delta {delta!r}")


def delta_from_json_dict(data: Mapping) -> Delta:
    """Decode one ``op``-tagged dictionary back into a delta.

    This is the ingestion path of ``POST /deltas``: every value is coerced
    to ``str`` (the table model is string-typed) and malformed shapes raise
    ``ValueError`` with the offending field, so the HTTP layer can answer
    400 instead of crashing a shard worker.
    """
    if not isinstance(data, Mapping):
        raise ValueError(f"a delta must be a JSON object, got {type(data).__name__}")

    def coerce_tid(raw: object) -> int:
        try:
            return int(raw)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ValueError(f"a delta 'tid' must be an integer, got {raw!r}") from None

    op = data.get("op")
    if op == "insert":
        values = data.get("values")
        if not isinstance(values, Mapping):
            raise ValueError("an insert delta needs a 'values' object")
        tid = data.get("tid")
        return Insert(
            values={str(k): str(v) for k, v in values.items()},
            tid=coerce_tid(tid) if tid is not None else None,
        )
    if op == "update":
        if "tid" not in data:
            raise ValueError("an update delta needs a 'tid'")
        changes = data.get("changes")
        if not isinstance(changes, Mapping):
            raise ValueError("an update delta needs a 'changes' object")
        return Update(
            tid=coerce_tid(data["tid"]),
            changes={str(k): str(v) for k, v in changes.items()},
        )
    if op == "delete":
        if "tid" not in data:
            raise ValueError("a delete delta needs a 'tid'")
        return Delete(tid=coerce_tid(data["tid"]))
    raise ValueError(
        f"unknown delta op {op!r}; expected 'insert', 'update' or 'delete'"
    )
