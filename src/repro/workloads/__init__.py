"""Synthetic workload generators for the paper's three datasets.

The paper evaluates on HAI (hospital infections, 231 k tuples), CAR (used
cars from cars.com, 30 k tuples) and a TPC-H derived table (6 M tuples),
each governed by the integrity constraints of Table 4.  None of those files
is available offline, so each generator produces a *clean* synthetic table
with the same schema, the same rule set and comparable value-distribution
characteristics (HAI is dense, CAR is sparse), scaled down to laptop size.
Errors are then injected with :mod:`repro.errors` exactly as in Section 7.1.

Every generator returns a :class:`Workload`: the clean table, its rules and
a recommended AGP threshold, plus a convenience method that produces the
dirty table and ground truth for a given error specification.
"""

from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.hai import HAIWorkloadGenerator
from repro.workloads.car import CarWorkloadGenerator
from repro.workloads.tpch import TPCHWorkloadGenerator
from repro.workloads.sample import SampleHospitalWorkloadGenerator
from repro.workloads.registry import (
    available_workloads,
    get_workload_generator,
    recommended_config,
    register_workload,
)

__all__ = [
    "Workload",
    "WorkloadInstance",
    "HAIWorkloadGenerator",
    "CarWorkloadGenerator",
    "TPCHWorkloadGenerator",
    "SampleHospitalWorkloadGenerator",
    "get_workload_generator",
    "available_workloads",
    "recommended_config",
    "register_workload",
]
