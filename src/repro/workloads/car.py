"""CAR: the used-vehicle workload.

The real dataset (cars.com listings, 30,760 tuples) is the *sparse* workload
of the study: many distinct model / type combinations with only a handful of
listings each, which is why the paper's optimal AGP threshold is τ = 1 and
why HoloClean is very sensitive to the error-type ratio on it.

The rule set is the CAR block of Table 4:

* CFD: Make("acura"), Type ⇒ Doors
* FD:  Model, Type ⇒ Make
"""

from __future__ import annotations

import random

from repro.constraints.rules import (
    ConditionalFunctionalDependency,
    FunctionalDependency,
    Rule,
)
from repro.dataset.table import Table
from repro.workloads.base import WorkloadGenerator

_MAKES = [
    "acura", "audi", "bmw", "chevrolet", "dodge", "ford", "honda", "hyundai",
    "jeep", "kia", "lexus", "mazda", "nissan", "subaru", "toyota", "volkswagen",
]

_TYPES = ["sedan", "suv", "coupe", "hatchback", "wagon", "pickup", "minivan"]

#: doors per body type; the acura CFD and the generator both use this mapping
_DOORS_BY_TYPE = {
    "sedan": "4",
    "suv": "5",
    "coupe": "2",
    "hatchback": "5",
    "wagon": "5",
    "pickup": "2",
    "minivan": "5",
}

#: model-name stems; combined with the make prefix they give model names that
#: differ from each other by several characters, like real model names do, so
#: a single-character typo stays closest to its own model
_MODEL_STEMS = [
    "alpha", "breeze", "comet", "dunes", "ember", "falcon",
    "glide", "horizon", "ivory", "jasper", "karma", "lumen",
]

_CONDITIONS = ["new", "used", "certified"]
_WHEEL_DRIVES = ["fwd", "rwd", "awd", "4wd"]
_ENGINES = ["1.5L I4", "2.0L I4", "2.5L I4", "3.0L V6", "3.5L V6", "5.0L V8", "electric"]


class CarWorkloadGenerator(WorkloadGenerator):
    """Synthetic CAR: sparse listings of used vehicles."""

    name = "car"
    recommended_threshold = 1

    def __init__(
        self,
        tuples: int = 3000,
        seed: int = 7,
        models_per_make: int = 12,
        listings_per_model: int = 3,
    ):
        super().__init__(tuples=tuples, seed=seed)
        self.models_per_make = models_per_make
        #: average number of listings per (model, type) combination — kept
        #: small so the workload stays sparse like the real CAR dataset
        self.listings_per_model = listings_per_model

    def rules(self) -> list[Rule]:
        return [
            ConditionalFunctionalDependency(
                conditions={"Make": "acura", "Type": None},
                consequents={"Doors": None},
                name="car_r1",
            ),
            FunctionalDependency(["Model", "Type"], ["Make"], name="car_r2"),
        ]

    def generate_clean(self) -> Table:
        rng = random.Random(self.seed)
        catalogue = self._catalogue()
        records = []
        for index in range(self.tuples):
            make, model, body_type = catalogue[
                (index // self.listings_per_model) % len(catalogue)
            ]
            records.append(
                {
                    "Model": model,
                    "Make": make,
                    "Type": body_type,
                    "Year": str(rng.randint(2005, 2020)),
                    "Condition": rng.choice(_CONDITIONS),
                    "WheelDrive": rng.choice(_WHEEL_DRIVES),
                    "Doors": _DOORS_BY_TYPE[body_type],
                    "Engine": rng.choice(_ENGINES),
                }
            )
        rng.shuffle(records)
        return Table.from_records(
            records,
            attributes=[
                "Model", "Make", "Type", "Year", "Condition",
                "WheelDrive", "Doors", "Engine",
            ],
            name="car",
        )

    def _catalogue(self) -> list[tuple[str, str, str]]:
        """(make, model, type) combinations; model names embed the make so the
        Model, Type ⇒ Make dependency holds by construction.

        Acura models are listed several times so roughly a third of the
        listings are acuras — the Table-4 CFD is written for acura, which only
        makes sense on a dataset where that make is well represented.
        """
        catalogue = []
        for make in _MAKES:
            repeats = 6 if make == "acura" else 1
            for model_index in range(self.models_per_make):
                stem = _MODEL_STEMS[model_index % len(_MODEL_STEMS)]
                model = f"{make[:3]}-{stem}{model_index // len(_MODEL_STEMS) or ''}"
                body_type = _TYPES[(model_index + len(make)) % len(_TYPES)]
                catalogue.extend([(make, model, body_type)] * repeats)
        return catalogue
