"""Workload registry: look generators up by dataset name.

The experiment harness and the benchmarks refer to datasets by the names the
paper uses ("CAR", "HAI", "TPC-H"); this registry maps those names to the
generator classes with sensible default sizes.
"""

from __future__ import annotations

from typing import Optional, Type

from repro.workloads.base import WorkloadGenerator
from repro.workloads.car import CarWorkloadGenerator
from repro.workloads.hai import HAIWorkloadGenerator
from repro.workloads.tpch import TPCHWorkloadGenerator

_GENERATORS: dict[str, Type[WorkloadGenerator]] = {
    "hai": HAIWorkloadGenerator,
    "car": CarWorkloadGenerator,
    "tpch": TPCHWorkloadGenerator,
    "tpc-h": TPCHWorkloadGenerator,
}


def available_workloads() -> list[str]:
    """Canonical workload names."""
    return ["hai", "car", "tpch"]


def get_workload_generator(
    name: str, tuples: Optional[int] = None, seed: int = 7, **kwargs
) -> WorkloadGenerator:
    """Instantiate the generator registered under ``name``.

    ``tuples`` overrides the generator's default size; extra keyword
    arguments are forwarded to the generator constructor.
    """
    key = name.lower()
    if key not in _GENERATORS:
        raise KeyError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        )
    generator_cls = _GENERATORS[key]
    if tuples is not None:
        return generator_cls(tuples=tuples, seed=seed, **kwargs)
    return generator_cls(seed=seed, **kwargs)
