"""Workload registry: look generators up by dataset name.

The experiment harness and the benchmarks refer to datasets by the names the
paper uses ("CAR", "HAI", "TPC-H"); this registry maps those names to the
generator classes with sensible default sizes.  Additional workloads (e.g.
the ``hospital-sample`` demo of :mod:`repro.workloads.sample`) plug in
through :func:`register_workload` instead of editing this module, and each
registration also declares the dataset's recommended pipeline configuration
(see :func:`recommended_config`).
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Optional, Type

from repro.registry import Registry, unknown_name
from repro.workloads.base import WorkloadGenerator
from repro.workloads.car import CarWorkloadGenerator
from repro.workloads.hai import HAIWorkloadGenerator
from repro.workloads.tpch import TPCHWorkloadGenerator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core ↔ workloads)
    from repro.core.config import MLNCleanConfig

_GENERATORS: Registry[Type[WorkloadGenerator]] = Registry("workload")
for _name, _generator_cls in (
    ("hai", HAIWorkloadGenerator),
    ("car", CarWorkloadGenerator),
    ("tpch", TPCHWorkloadGenerator),
    ("tpc-h", TPCHWorkloadGenerator),
):
    _GENERATORS.register(_name, _generator_cls)


def register_workload(name: str, generator_cls: Type[WorkloadGenerator]) -> None:
    """Register a generator class under ``name`` (case-insensitive).

    Re-registering a name with the same class is a no-op (so modules can
    register on import safely); rebinding a name to a different class is an
    error — aliases of one class remain allowed.
    """
    if not issubclass(generator_cls, WorkloadGenerator):
        raise TypeError(f"{generator_cls!r} is not a WorkloadGenerator subclass")
    _GENERATORS.register(name, generator_cls)


def available_workloads() -> list[str]:
    """Canonical workload names, in registration order.

    Aliases pointing at an already-listed generator class ("tpc-h" for
    "tpch") are collapsed onto the first name registered for that class.
    """
    names: list[str] = []
    seen: set[Type[WorkloadGenerator]] = set()
    for name, generator_cls in _GENERATORS.items():
        if generator_cls in seen:
            continue
        seen.add(generator_cls)
        names.append(name)
    return names


def recommended_config(name: str, **overrides) -> "MLNCleanConfig":
    """The registered workload's recommended pipeline configuration.

    Each generator declares the AGP threshold τ the paper's experiments
    found optimal for its dataset (``recommended_threshold``); registering a
    workload through :func:`register_workload` therefore also declares its
    recommended config — no per-dataset table to edit anywhere else.

    Unknown names fall back to the global defaults **with a warning** (they
    used to fall back silently, which hid typos in dataset names).
    """
    from dataclasses import replace

    from repro.core.config import MLNCleanConfig

    generator_cls = _GENERATORS.lookup(name)
    if generator_cls is None:
        warnings.warn(
            f"no workload registered under {name!r}; falling back to the "
            f"default configuration (tau=1). Registered workloads: "
            f"{available_workloads()}",
            stacklevel=2,
        )
        config = MLNCleanConfig()
    else:
        config = MLNCleanConfig(
            abnormal_threshold=generator_cls.recommended_threshold
        )
    return replace(config, **overrides) if overrides else config


def get_workload_generator(
    name: str, tuples: Optional[int] = None, seed: int = 7, **kwargs
) -> WorkloadGenerator:
    """Instantiate the generator registered under ``name``.

    ``tuples`` overrides the generator's default size; extra keyword
    arguments are forwarded to the generator constructor.
    """
    generator_cls = _GENERATORS.lookup(name)
    if generator_cls is None:
        raise KeyError(unknown_name("workload", name, available_workloads())) from None
    if tuples is not None:
        return generator_cls(tuples=tuples, seed=seed, **kwargs)
    return generator_cls(seed=seed, **kwargs)
