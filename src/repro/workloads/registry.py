"""Workload registry: look generators up by dataset name.

The experiment harness and the benchmarks refer to datasets by the names the
paper uses ("CAR", "HAI", "TPC-H"); this registry maps those names to the
generator classes with sensible default sizes.  Additional workloads (e.g.
the streaming demo datasets of :mod:`repro.streaming.source`) plug in
through :func:`register_workload` instead of editing this module.
"""

from __future__ import annotations

from typing import Optional, Type

from repro.workloads.base import WorkloadGenerator
from repro.workloads.car import CarWorkloadGenerator
from repro.workloads.hai import HAIWorkloadGenerator
from repro.workloads.tpch import TPCHWorkloadGenerator

_GENERATORS: dict[str, Type[WorkloadGenerator]] = {
    "hai": HAIWorkloadGenerator,
    "car": CarWorkloadGenerator,
    "tpch": TPCHWorkloadGenerator,
    "tpc-h": TPCHWorkloadGenerator,
}


def register_workload(name: str, generator_cls: Type[WorkloadGenerator]) -> None:
    """Register a generator class under ``name`` (case-insensitive).

    Re-registering a name with the same class is a no-op (so modules can
    register on import safely); rebinding a name to a different class is an
    error — aliases of one class remain allowed.
    """
    key = name.lower()
    if not issubclass(generator_cls, WorkloadGenerator):
        raise TypeError(f"{generator_cls!r} is not a WorkloadGenerator subclass")
    existing = _GENERATORS.get(key)
    if existing is not None and existing is not generator_cls:
        raise ValueError(
            f"workload {name!r} is already registered to {existing.__name__}"
        )
    _GENERATORS[key] = generator_cls


def available_workloads() -> list[str]:
    """Canonical workload names, in registration order.

    Aliases pointing at an already-listed generator class ("tpc-h" for
    "tpch") are collapsed onto the first name registered for that class.
    """
    names: list[str] = []
    seen: set[Type[WorkloadGenerator]] = set()
    for name, generator_cls in _GENERATORS.items():
        if generator_cls in seen:
            continue
        seen.add(generator_cls)
        names.append(name)
    return names


def get_workload_generator(
    name: str, tuples: Optional[int] = None, seed: int = 7, **kwargs
) -> WorkloadGenerator:
    """Instantiate the generator registered under ``name``.

    ``tuples`` overrides the generator's default size; extra keyword
    arguments are forwarded to the generator constructor.
    """
    key = name.lower()
    if key not in _GENERATORS:
        raise KeyError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        )
    generator_cls = _GENERATORS[key]
    if tuples is not None:
        return generator_cls(tuples=tuples, seed=seed, **kwargs)
    return generator_cls(seed=seed, **kwargs)
