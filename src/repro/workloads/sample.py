"""The paper's worked hospital example as a (tiny) registered workload.

The clean relation cycles the six ground-truth tuples of Table 1 up to the
requested size; the rules are r1-r3 of Example 1.  Mainly useful for demos
and fast tests that want the registry / session / streaming path end to end
on a dataset small enough to reason about by hand.
"""

from __future__ import annotations

from repro.constraints.rules import Rule
from repro.dataset.sample import (
    SAMPLE_ATTRIBUTES,
    SAMPLE_CLEAN_RECORDS,
    sample_hospital_rules,
)
from repro.dataset.table import Table
from repro.workloads.base import WorkloadGenerator
from repro.workloads.registry import register_workload


class SampleHospitalWorkloadGenerator(WorkloadGenerator):
    """Table 1 of the paper, cycled up to the requested tuple count."""

    name = "hospital-sample"
    recommended_threshold = 1

    def __init__(self, tuples: int = 6, seed: int = 7):
        super().__init__(tuples=tuples, seed=seed)

    def rules(self) -> list[Rule]:
        return sample_hospital_rules()

    def generate_clean(self) -> Table:
        records = [
            SAMPLE_CLEAN_RECORDS[i % len(SAMPLE_CLEAN_RECORDS)]
            for i in range(self.tuples)
        ]
        return Table.from_records(
            records, attributes=SAMPLE_ATTRIBUTES, name="hospital-sample"
        )


register_workload("hospital-sample", SampleHospitalWorkloadGenerator)
