"""HAI: the hospital-associated-infections workload.

The real dataset (data.medicare.gov "Hospital Compare", 231,265 tuples) lists
one row per hospital provider and reported infection measure.  The synthetic
generator keeps that structure: a pool of providers — each with a consistent
city / state / ZIP / county / phone number — crossed with a pool of measures,
so every provider appears in many rows.  This makes HAI the *dense* workload
of the study (large groups per reason value), which is why its optimal AGP
threshold is much larger than CAR's (τ = 10 in the paper).

The rule set is the HAI block of Table 4:

* PhoneNumber ⇒ ZIPCode
* PhoneNumber ⇒ State
* ZIPCode ⇒ City
* MeasureID ⇒ MeasureName
* ZIPCode ⇒ CountyName
* ProviderID ⇒ City, PhoneNumber
* DC: no two tuples share a phone number but differ on state
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.constraints.rules import DenialConstraint, FunctionalDependency, Rule
from repro.dataset.table import Table
from repro.workloads.base import WorkloadGenerator

#: US-style state codes used by the location pool
_STATES = [
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
    "HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
]

_CITY_STEMS = [
    "DOTHAN", "BOAZ", "HOOVER", "SELMA", "MOBILE", "JASPER", "ATHENS", "PELHAM",
    "DECATUR", "FLORENCE", "GADSDEN", "OXFORD", "TROY", "CULLMAN", "OZARK", "EUFAULA",
]

_COUNTY_STEMS = [
    "HOUSTON", "MARSHALL", "JEFFERSON", "DALLAS", "MOBILE", "WALKER", "LIMESTONE",
    "SHELBY", "MORGAN", "LAUDERDALE", "ETOWAH", "CALHOUN", "PIKE", "CULLMAN",
]

_MEASURE_STEMS = [
    "CLABSI", "CAUTI", "SSI-COLON", "SSI-HYST", "MRSA", "CDIFF", "HAI-1", "HAI-2",
    "HAI-3", "HAI-4", "HAI-5", "HAI-6",
]


@dataclass
class _Location:
    city: str
    state: str
    county: str
    zip_code: str


@dataclass
class _Provider:
    provider_id: str
    name: str
    location: _Location
    phone: str


class HAIWorkloadGenerator(WorkloadGenerator):
    """Synthetic HAI: providers × infection measures."""

    name = "hai"
    recommended_threshold = 10

    def __init__(
        self,
        tuples: int = 4000,
        seed: int = 7,
        providers: int | None = None,
        measures: int = 24,
    ):
        super().__init__(tuples=tuples, seed=seed)
        #: number of distinct providers; the default keeps ~40 rows per
        #: provider, matching the density of the real dataset (231 k rows over
        #: a few thousand providers)
        self.providers = providers if providers is not None else max(10, tuples // 40)
        self.measures = measures

    def rules(self) -> list[Rule]:
        return [
            FunctionalDependency(["PhoneNumber"], ["ZIPCode"], name="hai_r1"),
            FunctionalDependency(["PhoneNumber"], ["State"], name="hai_r2"),
            FunctionalDependency(["ZIPCode"], ["City"], name="hai_r3"),
            FunctionalDependency(["MeasureID"], ["MeasureName"], name="hai_r4"),
            FunctionalDependency(["ZIPCode"], ["CountyName"], name="hai_r5"),
            FunctionalDependency(["ProviderID"], ["City", "PhoneNumber"], name="hai_r6"),
            DenialConstraint.pairwise_equality_implies_equality(
                equal_attribute="PhoneNumber", implied_attribute="State", name="hai_r7"
            ),
        ]

    def generate_clean(self) -> Table:
        rng = random.Random(self.seed)
        locations = self._locations(rng)
        providers = self._providers(rng, locations)
        measures = self._measures()

        records = []
        for index in range(self.tuples):
            provider = providers[index % len(providers)]
            measure_id, measure_name = measures[
                (index // len(providers)) % len(measures)
            ]
            score = str(rng.randint(0, 100))
            records.append(
                {
                    "ProviderID": provider.provider_id,
                    "HospitalName": provider.name,
                    "City": provider.location.city,
                    "State": provider.location.state,
                    "ZIPCode": provider.location.zip_code,
                    "CountyName": provider.location.county,
                    "PhoneNumber": provider.phone,
                    "MeasureID": measure_id,
                    "MeasureName": measure_name,
                    "Score": score,
                }
            )
        return Table.from_records(records, name="hai")

    # ------------------------------------------------------------------
    # pools
    # ------------------------------------------------------------------
    def _locations(self, rng: random.Random) -> list[_Location]:
        """Distinct (city, state, county, ZIP) combinations; ZIP is a key."""
        locations = []
        count = max(8, self.providers // 3)
        for index in range(count):
            city = f"{_CITY_STEMS[index % len(_CITY_STEMS)]}{index // len(_CITY_STEMS) or ''}"
            state = _STATES[index % len(_STATES)]
            county = _COUNTY_STEMS[index % len(_COUNTY_STEMS)]
            zip_code = f"{35000 + index:05d}"
            locations.append(_Location(city, state, county, zip_code))
        rng.shuffle(locations)
        return locations

    def _providers(
        self, rng: random.Random, locations: list[_Location]
    ) -> list[_Provider]:
        providers = []
        for index in range(self.providers):
            location = locations[index % len(locations)]
            provider_id = f"P{10000 + index}"
            name = f"HOSPITAL-{index:04d}"
            phone = f"{2050000000 + index * 7919}"
            providers.append(_Provider(provider_id, name, location, phone))
        rng.shuffle(providers)
        return providers

    def _measures(self) -> list[tuple[str, str]]:
        """Measure id/name pairs.

        Ids follow the real dataset's ``HAI_<n>_SIR`` shape and embed the
        measure stem, so a one-character typo in an id rarely collides with a
        different measure's id (short numeric ids would collide constantly,
        which the real data does not exhibit).
        """
        measures = []
        for index in range(self.measures):
            stem = _MEASURE_STEMS[index % len(_MEASURE_STEMS)]
            suffix = index // len(_MEASURE_STEMS)
            measure_name = f"{stem}-{suffix}" if suffix else stem
            measure_id = f"HAI-{measure_name}-SIR-{index:02d}"
            measures.append((measure_id, measure_name))
        return measures
