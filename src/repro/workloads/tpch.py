"""TPC-H: the synthetic benchmark workload.

The paper joins the two largest TPC-H tables (lineitem and customer) into a
6-million-tuple relation governed by the single FD ``CustKey ⇒ Address``
(Table 4).  TPC-H is itself synthetic, so this generator regenerates an
equivalent join at laptop scale: each customer (with a stable address,
nation and phone) appears once per order line.
"""

from __future__ import annotations

import random

from repro.constraints.rules import FunctionalDependency, Rule
from repro.dataset.table import Table
from repro.workloads.base import WorkloadGenerator

_NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
    "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
]

_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]


class TPCHWorkloadGenerator(WorkloadGenerator):
    """Synthetic lineitem ⋈ customer join with the CustKey ⇒ Address FD."""

    name = "tpch"
    recommended_threshold = 2

    def __init__(
        self,
        tuples: int = 6000,
        seed: int = 7,
        customers: int | None = None,
    ):
        super().__init__(tuples=tuples, seed=seed)
        #: distinct customers; the default gives ~30 order lines per customer,
        #: matching the lineitem-per-customer density of TPC-H at scale
        self.customers = customers if customers is not None else max(10, tuples // 30)

    def rules(self) -> list[Rule]:
        return [FunctionalDependency(["CustKey"], ["Address"], name="tpch_r1")]

    def generate_clean(self) -> Table:
        rng = random.Random(self.seed)
        customers = self._customers(rng)
        records = []
        for index in range(self.tuples):
            cust_key, name, address, nation, phone, segment = customers[
                index % len(customers)
            ]
            records.append(
                {
                    "CustKey": cust_key,
                    "Name": name,
                    "Address": address,
                    "Nation": nation,
                    "Phone": phone,
                    "Segment": segment,
                    "OrderKey": f"O{100000 + index}",
                    "Quantity": str(rng.randint(1, 50)),
                    "ExtendedPrice": f"{rng.uniform(100.0, 90000.0):.2f}",
                }
            )
        return Table.from_records(records, name="tpch")

    def _customers(
        self, rng: random.Random
    ) -> list[tuple[str, str, str, str, str, str]]:
        customers = []
        for index in range(self.customers):
            cust_key = f"C{index:07d}"
            name = f"Customer#{index:09d}"
            address = f"{rng.randint(1, 9999)} {_random_street(rng)} {index:05d}"
            nation = _NATIONS[index % len(_NATIONS)]
            phone = f"{10 + index % 25}-{rng.randint(100, 999)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}"
            segment = _SEGMENTS[index % len(_SEGMENTS)]
            customers.append((cust_key, name, address, nation, phone, segment))
        return customers


def _random_street(rng: random.Random) -> str:
    stems = ["OAK", "MAPLE", "CEDAR", "PINE", "ELM", "WALNUT", "BIRCH", "SPRUCE"]
    suffixes = ["ST", "AVE", "BLVD", "LN", "DR", "WAY"]
    return f"{rng.choice(stems)} {rng.choice(suffixes)}"
