"""Common workload abstractions.

A :class:`Workload` is a clean table plus its rule set and the per-dataset
defaults (the AGP threshold τ the paper tunes per dataset).  Calling
:meth:`Workload.make_instance` injects errors and returns a
:class:`WorkloadInstance` ready to be handed to a cleaner and to the metrics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

from repro.constraints.rules import Rule
from repro.dataset.table import Table
from repro.errors.groundtruth import GroundTruth
from repro.errors.injector import ErrorInjector, ErrorSpec


@dataclass
class WorkloadInstance:
    """One experiment-ready instance: clean + dirty tables and ground truth."""

    name: str
    clean: Table
    dirty: Table
    ground_truth: GroundTruth
    rules: list[Rule]
    error_spec: ErrorSpec

    @property
    def error_rate(self) -> float:
        return self.ground_truth.error_rate(self.dirty)

    @property
    def injected_errors(self) -> int:
        return len(self.ground_truth)


@dataclass
class Workload:
    """A clean dataset together with its integrity constraints."""

    name: str
    clean: Table
    rules: list[Rule] = field(default_factory=list)
    #: the AGP threshold the paper found optimal for this dataset
    recommended_threshold: int = 1

    def make_instance(
        self, error_spec: Optional[ErrorSpec] = None
    ) -> WorkloadInstance:
        """Inject errors into a copy of the clean table."""
        spec = error_spec or ErrorSpec()
        injector = ErrorInjector(spec)
        result = injector.inject(self.clean, self.rules)
        return WorkloadInstance(
            name=self.name,
            clean=self.clean,
            dirty=result.dirty,
            ground_truth=result.ground_truth,
            rules=self.rules,
            error_spec=spec,
        )


class WorkloadGenerator(ABC):
    """Base class of the HAI / CAR / TPC-H generators."""

    #: short name used by the registry ("hai", "car", "tpch")
    name: str = "workload"
    #: AGP threshold the experiments use for this dataset
    recommended_threshold: int = 1

    def __init__(self, tuples: int = 2000, seed: int = 7):
        if tuples < 1:
            raise ValueError("a workload needs at least one tuple")
        self.tuples = tuples
        self.seed = seed

    @abstractmethod
    def rules(self) -> list[Rule]:
        """The Table-4 rule set of the dataset."""

    @abstractmethod
    def generate_clean(self) -> Table:
        """A clean table of ``self.tuples`` rows satisfying every rule."""

    def build(self) -> Workload:
        """Generate the clean table and bundle it with the rules."""
        clean = self.generate_clean()
        return Workload(
            name=self.name,
            clean=clean,
            rules=self.rules(),
            recommended_threshold=self.recommended_threshold,
        )
