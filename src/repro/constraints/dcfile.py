"""HoloClean-format denial-constraint files.

Real-world rule sets (HoloClean, Holistic data cleaning) ship as one denial
constraint per line in predicate-list form::

    t1&t2&EQ(t1.HospitalName,t2.HospitalName)&IQ(t1.ZipCode,t2.ZipCode)

Each line declares its tuple variables (``t1``, ``t2``) followed by
``OP(arg,arg)`` predicates, where ``OP`` is one of ``EQ``, ``IQ`` (the
HoloClean spelling of ≠), ``LT``, ``GT``, ``LTE``, ``GTE`` and an argument is
a tuple-variable attribute (``t1.City``) or a constant (``"BOAZ"``).  This
module compiles that syntax into the existing
:class:`~repro.constraints.rules.DenialConstraint` /
:class:`~repro.constraints.predicates.Predicate` types, so HoloClean rule
files load directly alongside the native ``parser.py`` syntax
(``"DC: PN(t1)=PN(t2) & ST(t1)!=ST(t2)"``).

Parse errors always carry the 1-based line number and the offending text.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Optional, Union

from repro.constraints.parser import RuleParseError
from repro.constraints.predicates import Comparison, Predicate
from repro.constraints.rules import DenialConstraint, Rule

#: HoloClean predicate operators → the comparison enum
_HC_OPERATORS = {
    "EQ": Comparison.EQ,
    "IQ": Comparison.NEQ,
    "NEQ": Comparison.NEQ,
    "LT": Comparison.LT,
    "GT": Comparison.GT,
    "LTE": Comparison.LTE,
    "GTE": Comparison.GTE,
}

_HC_PREDICATE = re.compile(
    r"^\s*(?P<op>[A-Z]+)\s*\(\s*(?P<left>[^,()]+?)\s*,\s*(?P<right>[^()]+?)\s*\)\s*$"
)
_HC_ATTRIBUTE = re.compile(r"^(?P<var>t\d+)\.(?P<attr>\w+)$")
_HC_TUPLE_VAR = re.compile(r"^t\d+$")


def looks_like_dc_line(text: str) -> bool:
    """True when ``text`` is in HoloClean predicate-list form.

    Used by :func:`repro.constraints.parser.parse_rule` to dispatch between
    the native syntax and this one: a HoloClean line always starts with a
    tuple-variable declaration (``t1&...``).
    """
    head = text.strip().split("&", 1)[0].strip()
    return bool(_HC_TUPLE_VAR.match(head))


def parse_dc_line(text: str, name: Optional[str] = None) -> DenialConstraint:
    """Parse one HoloClean-format denial constraint."""
    stripped = text.strip()
    if not stripped:
        raise RuleParseError("empty denial-constraint string")
    rule_name = name if name is not None else "dc"
    terms = [term.strip() for term in stripped.split("&") if term.strip()]
    variables: list[str] = []
    predicates: list[Predicate] = []
    for term in terms:
        if _HC_TUPLE_VAR.match(term):
            if predicates:
                raise RuleParseError(
                    f"tuple variable {term!r} after the first predicate "
                    f"in {text!r}"
                )
            if term in variables:
                raise RuleParseError(f"duplicate tuple variable {term!r} in {text!r}")
            variables.append(term)
            continue
        predicates.append(_parse_hc_predicate(term, variables, text))
    if len(variables) < 2:
        raise RuleParseError(
            f"single-tuple denial constraints are not supported: {text!r} "
            "(declare two tuple variables, e.g. 't1&t2&EQ(t1.A,t2.A)&...')"
        )
    if len(predicates) < 2:
        raise RuleParseError(
            f"a denial constraint needs at least two predicates: {text!r}"
        )
    return DenialConstraint(predicates, name=rule_name)


def _parse_hc_predicate(
    term: str, variables: list[str], line: str
) -> Predicate:
    match = _HC_PREDICATE.match(term)
    if match is None:
        raise RuleParseError(f"cannot parse DC predicate {term!r} in {line!r}")
    op_token = match.group("op").upper()
    operator = _HC_OPERATORS.get(op_token)
    if operator is None:
        known = ", ".join(sorted(_HC_OPERATORS))
        raise RuleParseError(
            f"unknown DC operator {op_token!r} in {term!r} (known: {known})"
        )
    left_var, left_attr = _parse_hc_argument(match.group("left"), variables, term)
    right_var, right_attr = _parse_hc_argument(match.group("right"), variables, term)
    if left_attr is None:
        raise RuleParseError(
            f"the left side of {term!r} must be a tuple attribute "
            "(e.g. 't1.City'), not a constant"
        )
    if right_attr is None:
        constant = match.group("right").strip().strip("'\"")
        return Predicate(left_attr, operator, constant=constant)
    return Predicate(
        left_attr,
        operator,
        right_attribute=right_attr,
        pairwise=left_var != right_var,
    )


def _parse_hc_argument(
    token: str, variables: list[str], term: str
) -> tuple[Optional[str], Optional[str]]:
    """One predicate argument → (tuple variable, attribute) or a constant.

    Returns ``(None, None)`` for constants; the caller re-reads the raw
    token so quoting is preserved until the final strip.
    """
    token = token.strip()
    match = _HC_ATTRIBUTE.match(token)
    if match is None:
        return None, None
    variable = match.group("var")
    if variables and variable not in variables:
        raise RuleParseError(
            f"predicate {term!r} references undeclared tuple variable "
            f"{variable!r} (declared: {', '.join(variables)})"
        )
    return variable, match.group("attr")


def parse_dc_text(text: str, prefix: str = "dc", source: str = "<string>") -> list[Rule]:
    """Parse a whole HoloClean DC file body (one constraint per line).

    Blank lines and ``#`` comments are skipped; rules are named
    ``<prefix>1``, ``<prefix>2``, ... in file order.  Every parse error is
    re-raised with ``<source>:<lineno>`` and the offending text.
    """
    rules: list[Rule] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            rules.append(parse_dc_line(line, name=f"{prefix}{len(rules) + 1}"))
        except RuleParseError as exc:
            raise RuleParseError(f"{source}:{lineno}: {exc} [line: {line!r}]") from exc
    if not rules:
        raise RuleParseError(f"{source}: no denial constraints found")
    return rules


def load_dc_file(path: Union[str, Path], prefix: str = "dc") -> list[Rule]:
    """Load a HoloClean-format denial-constraint file."""
    path = Path(path)
    return parse_dc_text(path.read_text(encoding="utf-8"), prefix=prefix, source=str(path))
