"""Integrity constraints (data quality rules).

MLNClean consumes three classes of constraints (Section 3 of the paper):
functional dependencies (FDs), conditional functional dependencies (CFDs),
and denial constraints (DCs).  Each rule decomposes into a *reason part* and
a *result part* — "the reason part determines the result part" — and that
decomposition drives the MLN-index construction of the core pipeline.

This package provides:

* :mod:`repro.constraints.predicates` — attribute comparison predicates used
  by general denial constraints,
* :mod:`repro.constraints.rules` — the FD / CFD / DC rule classes,
* :mod:`repro.constraints.parser` — a small textual rule language,
* :mod:`repro.constraints.dcfile` — HoloClean-format denial-constraint files,
* :mod:`repro.constraints.violations` — violation detection over a table.
"""

from repro.constraints.predicates import Comparison, Predicate
from repro.constraints.rules import (
    ConditionalFunctionalDependency,
    DenialConstraint,
    FunctionalDependency,
    Rule,
)
from repro.constraints.parser import parse_rule, parse_rules
from repro.constraints.dcfile import load_dc_file, parse_dc_line, parse_dc_text
from repro.constraints.violations import Violation, detect_violations, violating_cells

__all__ = [
    "Comparison",
    "Predicate",
    "Rule",
    "FunctionalDependency",
    "ConditionalFunctionalDependency",
    "DenialConstraint",
    "parse_rule",
    "parse_rules",
    "parse_dc_line",
    "parse_dc_text",
    "load_dc_file",
    "Violation",
    "detect_violations",
    "violating_cells",
]
