"""Violation detection over a whole rule set.

MLNClean performs detection and repair together, but the experiments (and the
HoloClean baseline, which needs an explicit detection phase) still need a way
to enumerate all schema-level violations of a rule set and the cells they
implicate.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.constraints.rules import Rule, Violation
from repro.dataset.table import Cell, Table


def detect_violations(table: Table, rules: Sequence[Rule]) -> list[Violation]:
    """All violations of all rules, in rule order."""
    found: list[Violation] = []
    for rule in rules:
        found.extend(rule.violations(table))
    return found


def violating_cells(table: Table, rules: Sequence[Rule]) -> set[Cell]:
    """The set of cells implicated by at least one violation."""
    cells: set[Cell] = set()
    for violation in detect_violations(table, rules):
        cells.update(violation.suspect_cells)
    return cells


def violating_tids(table: Table, rules: Sequence[Rule]) -> set[int]:
    """The set of tuples involved in at least one violation."""
    tids: set[int] = set()
    for violation in detect_violations(table, rules):
        tids.update(violation.tids)
    return tids


def violation_summary(table: Table, rules: Sequence[Rule]) -> dict[str, int]:
    """Per-rule violation counts (rule name -> number of violations)."""
    summary: dict[str, int] = {}
    for rule in rules:
        summary[rule.name] = len(rule.violations(table))
    return summary


def is_consistent(table: Table, rules: Sequence[Rule]) -> bool:
    """True when no rule has any violation in the table."""
    return all(not rule.violations(table) for rule in rules)
