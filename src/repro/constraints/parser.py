"""A small textual language for integrity constraints.

The experiment definitions (Table 4 of the paper) are much easier to read and
to maintain as text than as constructor calls, so this module parses:

* FDs:   ``"PhoneNumber -> ZIPCode"`` or ``"ProviderID -> City, PhoneNumber"``
* CFDs:  ``"Make=acura, Type -> Doors"`` or
         ``"HN=ELIZA, CT=BOAZ -> PN=2567688400"``
  (an attribute with ``=value`` is a constant pattern, without is a wildcard;
  the rule is a CFD as soon as any constant appears, otherwise an FD)
* DCs:   ``"DC: PN(t1)=PN(t2) & ST(t1)!=ST(t2)"``
  (a conjunction of comparison predicates that must never hold together;
  ``t1``/``t2`` mark which tuple variable each side refers to)
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Sequence
from typing import Optional

from repro.constraints.predicates import Comparison, Predicate
from repro.constraints.rules import (
    ConditionalFunctionalDependency,
    DenialConstraint,
    FunctionalDependency,
    Rule,
)

_DC_PREFIX = re.compile(r"^\s*DC\s*:\s*", re.IGNORECASE)
_DC_TERM = re.compile(
    r"^\s*(?P<left_attr>\w+)\s*\(\s*(?P<left_var>t1|t2|t)\s*\)\s*"
    r"(?P<op>!=|>=|<=|=|<|>)\s*"
    r"(?:(?P<right_attr>\w+)\s*\(\s*(?P<right_var>t1|t2|t)\s*\)|(?P<const>[^&]+?))\s*$"
)
_OPERATORS = {
    "=": Comparison.EQ,
    "!=": Comparison.NEQ,
    "<": Comparison.LT,
    "<=": Comparison.LTE,
    ">": Comparison.GT,
    ">=": Comparison.GTE,
}


class RuleParseError(ValueError):
    """Raised when a rule string cannot be parsed."""


def parse_rule(text: str, name: Optional[str] = None) -> Rule:
    """Parse one rule string into a :class:`~repro.constraints.rules.Rule`."""
    if not text or not text.strip():
        raise RuleParseError("empty rule string")
    stripped = text.strip()
    rule_name = name if name is not None else _default_name(stripped)
    if _DC_PREFIX.match(stripped):
        return _parse_denial_constraint(_DC_PREFIX.sub("", stripped), rule_name)
    if "->" not in stripped:
        # HoloClean predicate-list form ("t1&t2&EQ(t1.A,t2.A)&..."); lazy
        # import because dcfile reuses RuleParseError from this module.
        from repro.constraints.dcfile import looks_like_dc_line, parse_dc_line

        if looks_like_dc_line(stripped):
            return parse_dc_line(stripped, name=rule_name)
        raise RuleParseError(
            f"cannot parse rule {text!r}: expected '->', a 'DC:' prefix, or "
            "a HoloClean predicate list ('t1&t2&EQ(t1.A,t2.A)&...')"
        )
    return _parse_dependency(stripped, rule_name)


def parse_rules(texts: Iterable[str], prefix: str = "r") -> list[Rule]:
    """Parse many rule strings, naming them ``<prefix>1``, ``<prefix>2``, ..."""
    return [
        parse_rule(text, name=f"{prefix}{index}")
        for index, text in enumerate(texts, start=1)
    ]


def _default_name(text: str) -> str:
    compact = re.sub(r"\s+", "", text)
    return compact[:40]


def _split_terms(side: str) -> list[tuple[str, Optional[str]]]:
    """Split ``"A=x, B"`` into ``[("A", "x"), ("B", None)]``."""
    terms: list[tuple[str, Optional[str]]] = []
    for raw in side.split(","):
        part = raw.strip()
        if not part:
            raise RuleParseError(f"empty attribute term in {side!r}")
        if "=" in part:
            attribute, _, value = part.partition("=")
            attribute = attribute.strip()
            value = value.strip().strip("'\"")
            if not attribute or not value:
                raise RuleParseError(f"malformed constant pattern {part!r}")
            terms.append((attribute, value))
        else:
            terms.append((part, None))
    return terms


def _parse_dependency(text: str, name: str) -> Rule:
    left_text, _, right_text = text.partition("->")
    left_terms = _split_terms(left_text)
    right_terms = _split_terms(right_text)
    has_constant = any(v is not None for _, v in left_terms + right_terms)
    if not has_constant:
        return FunctionalDependency(
            [a for a, _ in left_terms], [a for a, _ in right_terms], name=name
        )
    conditions = {a: v for a, v in left_terms}
    consequents = {a: v for a, v in right_terms}
    return ConditionalFunctionalDependency(conditions, consequents, name=name)


def _parse_denial_constraint(body: str, name: str) -> DenialConstraint:
    terms = [t for t in re.split(r"&|∧", body) if t.strip()]
    if len(terms) < 2:
        raise RuleParseError(
            f"a denial constraint needs at least two predicates: {body!r}"
        )
    predicates = [_parse_dc_predicate(term) for term in terms]
    return DenialConstraint(predicates, name=name)


def _parse_dc_predicate(term: str) -> Predicate:
    match = _DC_TERM.match(term)
    if match is None:
        raise RuleParseError(f"cannot parse DC predicate {term!r}")
    operator = _OPERATORS[match.group("op")]
    left_attr = match.group("left_attr")
    right_attr = match.group("right_attr")
    if right_attr is not None:
        pairwise = match.group("left_var") != match.group("right_var")
        return Predicate(
            left_attr, operator, right_attribute=right_attr, pairwise=pairwise
        )
    constant = match.group("const").strip().strip("'\"")
    return Predicate(left_attr, operator, constant=constant)


def rules_to_strings(rules: Sequence[Rule]) -> list[str]:
    """Render rules back to a readable textual form (for reports/examples)."""
    return [f"{rule.name}: {rule}" for rule in rules]
