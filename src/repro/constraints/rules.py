"""Integrity-constraint rule classes: FD, CFD and DC.

Every rule exposes the decomposition the MLN index is built on
(Section 4 of the paper):

* ``reason_attributes`` — the attributes of the reason part (the antecedent
  of an FD/CFD; all but the last predicate of a DC),
* ``result_attributes`` — the attributes of the result part (the consequent
  of an FD/CFD; the last predicate of a DC),
* ``covers(row)`` — whether a tuple contributes a piece of data (γ) to the
  rule's block,
* ``violations(table)`` — schema-level violations for detection and for the
  baseline's constraint features,
* ``to_mln_string()`` — the clausal MLN form of the rule
  (e.g. ``¬CT ∨ ST`` for the FD ``CT ⇒ ST``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Optional

from repro.constraints.predicates import Comparison, Predicate
from repro.dataset.table import Cell, Table


@dataclass
class Violation:
    """A schema-level violation of one rule.

    ``tids`` are the tuples involved; ``suspect_cells`` are the result-part
    cells that the violation casts doubt on (the cells a repair would touch).
    """

    rule: "Rule"
    tids: tuple[int, ...]
    suspect_cells: tuple[Cell, ...]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"Violation({self.rule.name}, tids={self.tids})"


class Rule(ABC):
    """Base class of all integrity constraints."""

    #: rule class identifier, one of ``"FD"``, ``"CFD"``, ``"DC"``
    kind: str = "RULE"

    def __init__(self, name: str, weight: Optional[float] = None):
        self.name = name
        #: MLN weight of the rule (``wi`` in Definition 1); ``None`` until the
        #: weight learner assigns one.
        self.weight = weight

    # ------------------------------------------------------------------
    # reason / result decomposition
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def reason_attributes(self) -> list[str]:
        """Attributes of the reason part."""

    @property
    @abstractmethod
    def result_attributes(self) -> list[str]:
        """Attributes of the result part."""

    @property
    def attributes(self) -> list[str]:
        """All attributes the rule involves (reason first, then result)."""
        attrs = list(self.reason_attributes)
        for attribute in self.result_attributes:
            if attribute not in attrs:
                attrs.append(attribute)
        return attrs

    # ------------------------------------------------------------------
    # coverage and violations
    # ------------------------------------------------------------------
    def covers(self, row: Mapping[str, str]) -> bool:
        """Whether a tuple contributes a piece of data to this rule's block.

        FDs and DCs cover every tuple; CFDs override this with pattern
        matching.
        """
        del row
        return True

    @abstractmethod
    def violations(self, table: Table) -> list[Violation]:
        """All schema-level violations of the rule in ``table``."""

    def is_satisfied(self, table: Table) -> bool:
        """True when the table contains no violation of the rule."""
        return not self.violations(table)

    # ------------------------------------------------------------------
    # MLN form
    # ------------------------------------------------------------------
    @abstractmethod
    def to_mln_string(self) -> str:
        """The rule as a clause of literals, e.g. ``¬CT ∨ ST``."""

    def describe(self) -> str:
        """Human readable one-liner."""
        return f"{self.name} ({self.kind}): {self.to_mln_string()}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class FunctionalDependency(Rule):
    """A functional dependency ``X ⇒ Y`` (rule r1 of the paper: ``CT ⇒ ST``)."""

    kind = "FD"

    def __init__(
        self,
        determinant: Sequence[str],
        dependent: Sequence[str],
        name: str = "fd",
        weight: Optional[float] = None,
    ):
        super().__init__(name, weight)
        if not determinant or not dependent:
            raise ValueError("an FD needs non-empty determinant and dependent sets")
        overlap = set(determinant) & set(dependent)
        if overlap:
            raise ValueError(f"attributes {sorted(overlap)} on both sides of the FD")
        self.determinant = list(determinant)
        self.dependent = list(dependent)

    @property
    def reason_attributes(self) -> list[str]:
        return list(self.determinant)

    @property
    def result_attributes(self) -> list[str]:
        return list(self.dependent)

    def violations(self, table: Table) -> list[Violation]:
        """Groups of tuples agreeing on the determinant but not the dependent."""
        groups: dict[tuple[str, ...], list[int]] = {}
        for row in table:
            key = row.values_for(self.determinant)
            groups.setdefault(key, []).append(row.tid)
        found: list[Violation] = []
        for tids in groups.values():
            if len(tids) < 2:
                continue
            dependents = {
                table.row(tid).values_for(self.dependent) for tid in tids
            }
            if len(dependents) <= 1:
                continue
            cells = tuple(
                Cell(tid, attribute)
                for tid in tids
                for attribute in self.dependent
            )
            found.append(Violation(self, tuple(tids), cells))
        return found

    def to_mln_string(self) -> str:
        lhs = " ∨ ".join(f"¬{a}" for a in self.determinant)
        rhs = " ∨ ".join(self.dependent)
        return f"{lhs} ∨ {rhs}"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{', '.join(self.determinant)} -> {', '.join(self.dependent)}"


class ConditionalFunctionalDependency(Rule):
    """A CFD: an FD that only applies to tuples matching a constant pattern.

    ``conditions`` maps reason attributes to a constant pattern or ``None``
    (a wildcard, i.e. the attribute participates but any value matches).
    ``consequents`` maps result attributes to a constant pattern or ``None``.
    The paper's rule r3 is
    ``HN("ELIZA"), CT("BOAZ") ⇒ PN("2567688400")``.

    Coverage follows the MLN-index construction of the paper: a tuple joins
    the rule's block as soon as it matches at least one constant of the reason
    pattern (so that, e.g., tuple t3 with HN = ELIZA but a wrong CT still lands
    in block B3 and can be repaired there); a tuple that matches *all* reason
    constants but contradicts a constant consequent is a violation.
    """

    kind = "CFD"

    def __init__(
        self,
        conditions: Mapping[str, Optional[str]],
        consequents: Mapping[str, Optional[str]],
        name: str = "cfd",
        weight: Optional[float] = None,
    ):
        super().__init__(name, weight)
        if not conditions or not consequents:
            raise ValueError("a CFD needs non-empty condition and consequent patterns")
        overlap = set(conditions) & set(consequents)
        if overlap:
            raise ValueError(f"attributes {sorted(overlap)} on both sides of the CFD")
        self.conditions = dict(conditions)
        self.consequents = dict(consequents)

    @property
    def reason_attributes(self) -> list[str]:
        return list(self.conditions.keys())

    @property
    def result_attributes(self) -> list[str]:
        return list(self.consequents.keys())

    @property
    def constant_conditions(self) -> dict[str, str]:
        """The reason-part patterns bound to constants."""
        return {a: v for a, v in self.conditions.items() if v is not None}

    @property
    def constant_consequents(self) -> dict[str, str]:
        """The result-part patterns bound to constants."""
        return {a: v for a, v in self.consequents.items() if v is not None}

    def covers(self, row: Mapping[str, str]) -> bool:
        constants = self.constant_conditions
        if not constants:
            return True
        return any(row[a] == v for a, v in constants.items())

    def matches_pattern(self, row: Mapping[str, str]) -> bool:
        """Whether a tuple matches every constant of the reason pattern."""
        return all(row[a] == v for a, v in self.constant_conditions.items())

    def violations(self, table: Table) -> list[Violation]:
        """Pattern-matching tuples whose consequent contradicts the rule."""
        found: list[Violation] = []
        constant_consequents = self.constant_consequents
        # Constant consequents: per-tuple check.
        if constant_consequents:
            for row in table:
                if not self.matches_pattern(row.as_dict()):
                    continue
                wrong = [
                    Cell(row.tid, attribute)
                    for attribute, value in constant_consequents.items()
                    if row[attribute] != value
                ]
                if wrong:
                    found.append(Violation(self, (row.tid,), tuple(wrong)))
        # Variable consequents behave like an FD restricted to the pattern.
        variable_consequents = [
            a for a, v in self.consequents.items() if v is None
        ]
        if variable_consequents:
            groups: dict[tuple[str, ...], list[int]] = {}
            for row in table:
                if not self.matches_pattern(row.as_dict()):
                    continue
                key = row.values_for(self.reason_attributes)
                groups.setdefault(key, []).append(row.tid)
            for tids in groups.values():
                if len(tids) < 2:
                    continue
                dependents = {
                    table.row(tid).values_for(variable_consequents) for tid in tids
                }
                if len(dependents) <= 1:
                    continue
                cells = tuple(
                    Cell(tid, attribute)
                    for tid in tids
                    for attribute in variable_consequents
                )
                found.append(Violation(self, tuple(tids), cells))
        return found

    def to_mln_string(self) -> str:
        def literal(attribute: str, value: Optional[str]) -> str:
            return f"{attribute}({value!r})" if value is not None else attribute

        lhs = " ∨ ".join(
            f"¬{literal(a, v)}" for a, v in self.conditions.items()
        )
        rhs = " ∨ ".join(literal(a, v) for a, v in self.consequents.items())
        return f"{lhs} ∨ {rhs}"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        conditions = ", ".join(
            f"{a}={v!r}" if v is not None else a for a, v in self.conditions.items()
        )
        consequents = ", ".join(
            f"{a}={v!r}" if v is not None else a for a, v in self.consequents.items()
        )
        return f"[{conditions}] -> [{consequents}]"


class DenialConstraint(Rule):
    """A denial constraint ``∀t, t' ¬(p1 ∧ ... ∧ pn)``.

    Following the paper, the last predicate forms the result part and the
    remaining predicates form the reason part.  The constructor accepts any
    predicate list; the common "same value on A implies same value on B"
    shape used by the paper (rule r2) and the HAI rule set has a dedicated
    factory, :meth:`pairwise_equality_implies_equality`.
    """

    kind = "DC"

    def __init__(
        self,
        predicates: Sequence[Predicate],
        name: str = "dc",
        weight: Optional[float] = None,
    ):
        super().__init__(name, weight)
        if len(predicates) < 2:
            raise ValueError("a denial constraint needs at least two predicates")
        self.predicates = list(predicates)

    @classmethod
    def pairwise_equality_implies_equality(
        cls,
        equal_attribute: str,
        implied_attribute: str,
        name: str = "dc",
        weight: Optional[float] = None,
    ) -> "DenialConstraint":
        """``¬(A(t)=A(t') ∧ B(t)≠B(t'))`` — equal A forces equal B.

        This is rule r2 of the paper with ``A = PN`` and ``B = ST``.
        """
        predicates = [
            Predicate(equal_attribute, Comparison.EQ, right_attribute=equal_attribute),
            Predicate(implied_attribute, Comparison.NEQ, right_attribute=implied_attribute),
        ]
        return cls(predicates, name=name, weight=weight)

    @property
    def reason_predicates(self) -> list[Predicate]:
        return self.predicates[:-1]

    @property
    def result_predicate(self) -> Predicate:
        return self.predicates[-1]

    @property
    def reason_attributes(self) -> list[str]:
        attrs: list[str] = []
        for predicate in self.reason_predicates:
            if predicate.left_attribute not in attrs:
                attrs.append(predicate.left_attribute)
        return attrs

    @property
    def result_attributes(self) -> list[str]:
        return [self.result_predicate.left_attribute]

    def violations(self, table: Table) -> list[Violation]:
        """Tuple pairs on which all predicates hold simultaneously.

        Pairs are enumerated inside buckets keyed by the attributes of the
        pairwise-equality reason predicates (when any exist), which keeps the
        common "equality implies equality" constraints close to linear time.
        """
        equality_attrs = [
            p.left_attribute
            for p in self.reason_predicates
            if p.operator is Comparison.EQ
            and p.right_attribute == p.left_attribute
            and p.constant is None
        ]
        buckets: dict[tuple[str, ...], list[int]] = {}
        if equality_attrs:
            for row in table:
                key = row.values_for(equality_attrs)
                buckets.setdefault(key, []).append(row.tid)
        else:
            buckets[()] = list(table.tids)

        found: list[Violation] = []
        result_attr = self.result_predicate.left_attribute
        for tids in buckets.values():
            if len(tids) < 2:
                continue
            rows = {tid: table.row(tid).as_dict() for tid in tids}
            for i, tid_a in enumerate(tids):
                for tid_b in tids[i + 1 :]:
                    first, second = rows[tid_a], rows[tid_b]
                    if all(p.holds(first, second) for p in self.predicates):
                        cells = (Cell(tid_a, result_attr), Cell(tid_b, result_attr))
                        found.append(Violation(self, (tid_a, tid_b), cells))
        return found

    def to_mln_string(self) -> str:
        literals = " ∨ ".join(f"¬({p.describe()})" for p in self.predicates)
        return literals

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        body = " ∧ ".join(p.describe() for p in self.predicates)
        return f"∀t,t' ¬({body})"
