"""Comparison predicates for denial constraints.

A denial constraint is a universally quantified conjunction of predicates
that must never all be true at once: ``∀t, t' ¬(p1 ∧ p2 ∧ ... ∧ pn)``.
Each predicate compares an attribute of one tuple either with the same (or
another) attribute of a second tuple, or with a constant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Comparison(enum.Enum):
    """Comparison operators supported inside denial-constraint predicates."""

    EQ = "="
    NEQ = "!="
    LT = "<"
    LTE = "<="
    GT = ">"
    GTE = ">="

    def evaluate(self, left: str, right: str) -> bool:
        """Apply the operator to two string values.

        Values that both parse as numbers are compared numerically for the
        ordering operators; equality always uses exact string comparison,
        matching how the paper treats attribute values.
        """
        if self is Comparison.EQ:
            return left == right
        if self is Comparison.NEQ:
            return left != right
        left_key = _ordering_key(left)
        right_key = _ordering_key(right)
        if self is Comparison.LT:
            return left_key < right_key
        if self is Comparison.LTE:
            return left_key <= right_key
        if self is Comparison.GT:
            return left_key > right_key
        return left_key >= right_key

    def negated(self) -> "Comparison":
        """The logical negation of the operator."""
        return _NEGATIONS[self]


_NEGATIONS = {
    Comparison.EQ: Comparison.NEQ,
    Comparison.NEQ: Comparison.EQ,
    Comparison.LT: Comparison.GTE,
    Comparison.LTE: Comparison.GT,
    Comparison.GT: Comparison.LTE,
    Comparison.GTE: Comparison.LT,
}


def _ordering_key(value: str) -> tuple[int, float, str]:
    """Order numbers numerically and everything else lexicographically."""
    try:
        return (0, float(value), "")
    except ValueError:
        return (1, 0.0, value)


@dataclass(frozen=True)
class Predicate:
    """One comparison inside a denial constraint.

    ``left_attribute`` always refers to the first tuple variable.  The right
    hand side is either another attribute (``right_attribute``, referring to
    the second tuple variable when ``pairwise`` is True, otherwise to the same
    tuple) or a constant (``constant``).
    """

    left_attribute: str
    operator: Comparison
    right_attribute: Optional[str] = None
    constant: Optional[str] = None
    pairwise: bool = True

    def __post_init__(self) -> None:
        has_attr = self.right_attribute is not None
        has_const = self.constant is not None
        if has_attr == has_const:
            raise ValueError(
                "exactly one of right_attribute and constant must be given"
            )

    @property
    def attributes(self) -> list[str]:
        """All attributes the predicate reads."""
        attrs = [self.left_attribute]
        if self.right_attribute is not None and self.right_attribute not in attrs:
            attrs.append(self.right_attribute)
        return attrs

    def holds(self, first: dict[str, str], second: Optional[dict[str, str]] = None) -> bool:
        """Evaluate the predicate on one tuple (or a pair of tuples).

        ``first`` and ``second`` are attribute→value mappings.  A pairwise
        predicate requires ``second``; single-tuple predicates ignore it.
        """
        left_value = first[self.left_attribute]
        if self.constant is not None:
            return self.operator.evaluate(left_value, self.constant)
        if self.pairwise:
            if second is None:
                raise ValueError("pairwise predicate needs a second tuple")
            right_value = second[self.right_attribute]  # type: ignore[index]
        else:
            right_value = first[self.right_attribute]  # type: ignore[index]
        return self.operator.evaluate(left_value, right_value)

    def describe(self) -> str:
        """A compact human-readable rendering, e.g. ``PN(t)=PN(t')``."""
        if self.constant is not None:
            return f"{self.left_attribute}(t){self.operator.value}{self.constant!r}"
        other = "t'" if self.pairwise else "t"
        return (
            f"{self.left_attribute}(t){self.operator.value}"
            f"{self.right_attribute}({other})"
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()
