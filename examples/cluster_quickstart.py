"""Cluster: a router, two workers, and a kill -9 that nobody notices.

Boots the multi-process shard fabric of :mod:`repro.cluster` — one
consistent-hashing router in front of two worker processes sharing a
durable data directory — then walks the tentpole property end to end:

1. a ``POST /clean`` request through the router (same wire protocol as the
   single-process service; job ids come back worker-namespaced),
2. a delta stream, micro-batch by micro-batch, landing on whichever worker
   the hash ring owns the shard to,
3. ``kill -9`` of that worker mid-stream — the retrying client rides out
   the failover while the surviving worker recovers the shard from the
   shared write-ahead log + snapshot,
4. proof: the recovered stream's masked report signature is byte-identical
   to an in-process engine that never died.

Run with::

    python examples/cluster_quickstart.py [tuples] [batch]
"""

import os
import signal
import sys
import tempfile

from repro.cluster.launch import spawn_router, spawn_worker, wait_for_workers
from repro.experiments.harness import prepare_instance
from repro.service import ServiceClient, ServiceError, report_signature
from repro.streaming import DeltaBatch, Insert, StreamingMLNClean
from repro.workloads.registry import get_workload_generator, recommended_config


def free_port() -> int:
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def main() -> None:
    tuples = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    batch_size = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    # the reference: an uninterrupted in-process stream over the same data
    instance = prepare_instance("hai", tuples=tuples)
    generator = get_workload_generator("hai", tuples=tuples, seed=7)
    schema = instance.dirty.attributes
    rows = list(instance.dirty.rows)
    batches = [
        [Insert(values={a: r[a] for a in schema}, tid=r.tid) for r in rows[i:i + batch_size]]
        for i in range(0, len(rows), batch_size)
    ]
    reference = StreamingMLNClean(
        generator.rules(), schema=schema, config=recommended_config("hai")
    )
    for deltas in batches:
        reference.apply_batch(DeltaBatch(list(deltas)))
    reference_signature = report_signature(reference.report())

    data_dir = tempfile.mkdtemp(prefix="cluster-quickstart-")
    router_port = free_port()
    worker_ports = {"w1": free_port(), "w2": free_port()}
    router = spawn_router(router_port, rebalance_interval=0.3, dead_after=1.5)
    workers = {
        worker_id: spawn_worker(
            port, worker_id, data_dir,
            router=f"127.0.0.1:{router_port}", snapshot_every=2,
        )
        for worker_id, port in worker_ports.items()
    }
    procs = [router, *workers.values()]
    try:
        wait_for_workers(router_port, 2)
        print(f"cluster up: router + {len(workers)} workers, shared WAL dir")

        # a retrying client: 503s during failover are invisible to the caller
        client = ServiceClient(
            port=router_port, retries=12, backoff=0.2, max_backoff=2.0
        )

        job = client.clean(workload="hospital-sample", tuples=24, include_report=False)
        print(f"clean via router: job {job['id']} -> {job['status']}")

        print(f"\nStreaming {tuples} HAI tuples in batches of {batch_size} ...")
        half = len(batches) // 2
        for deltas in batches[:half]:
            wire = [
                {"op": "insert", "values": dict(d.values), "tid": d.tid}
                for d in deltas
            ]
            job = client.deltas(wire, workload="hai", seed=7, include_table=False)
            print(f"  tick {job['result']['tick']}: {job['result']['applied']}")

        # which worker owns the stream? ask their /cluster/* control routes
        owner, fingerprint = None, None
        for worker_id, port in worker_ports.items():
            info = ServiceClient(port=port).request("GET", "/cluster/info")
            for fp in info["shards"]:
                try:
                    ServiceClient(port=port).request("GET", f"/cluster/streams/{fp}")
                except ServiceError:
                    continue
                owner, fingerprint = worker_id, fp
        print(f"\nkill -9 the stream's owner ({owner}) mid-stream ...")
        os.kill(workers[owner].pid, signal.SIGKILL)
        workers[owner].wait()

        for deltas in batches[half:]:
            wire = [
                {"op": "insert", "values": dict(d.values), "tid": d.tid}
                for d in deltas
            ]
            job = client.deltas(wire, workload="hai", seed=7, include_table=False)
            print(f"  tick {job['result']['tick']}: {job['result']['applied']}")

        survivor = next(w for w in worker_ports if w != owner)
        state = ServiceClient(port=worker_ports[survivor]).request(
            "GET", f"/cluster/streams/{fingerprint}"
        )
        print(
            f"\nstream recovered on {survivor} from snapshot + WAL "
            f"(ticks={state['ticks']}, tuples={state['tuples']})"
        )
        print(
            "recovered signature matches the never-killed engine: "
            f"{state['signature'] == reference_signature}"
        )

        stats = client.stats()
        live = [w for w, info in stats["workers"].items() if info["live"]]
        print(f"router membership after failover: live workers = {live}")
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            if proc.poll() is None:
                proc.wait()


if __name__ == "__main__":
    main()
