"""Serving: boot the cleaning service and take concurrent traffic.

Starts a :class:`repro.service.ServiceServer` (the same stack
``python -m repro.service serve`` runs, on a background thread and an
ephemeral port), fires concurrent ``POST /clean`` requests at it through the
client helper, verifies every response is byte-identical to a standalone
batch session run, streams a couple of ``POST /deltas`` micro-batches into a
warm shard, and prints the ``/stats`` surface — queue, latency percentiles,
per-shard throughput, distance-cache counters.

Run with::

    python examples/service_quickstart.py [tuples] [requests]
"""

import sys
from concurrent.futures import ThreadPoolExecutor

from repro.experiments.harness import prepare_instance
from repro.service import ServiceClient, ServiceServer, report_signature
from repro.session import CleaningSession
from repro.workloads.registry import recommended_config


def main() -> None:
    tuples = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    requests = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    with ServiceServer() as server:
        client = ServiceClient(port=server.port)
        client.wait_until_healthy()
        print(f"service listening on 127.0.0.1:{server.port}")

        # the reference answer, computed the pre-service way
        instance = prepare_instance("hospital-sample", tuples=tuples, error_rate=0.1)
        session = CleaningSession(
            rules=instance.rules, config=recommended_config("hospital-sample")
        )
        reference = session.run(
            table=instance.dirty, ground_truth=instance.ground_truth
        )

        print(f"\nFiring {requests} concurrent /clean requests ...")
        with ThreadPoolExecutor(max_workers=4) as pool:
            jobs = list(
                pool.map(
                    lambda _i: client.clean(
                        workload="hospital-sample", tuples=tuples, error_rate=0.1
                    ),
                    range(requests),
                )
            )
        matches = sum(
            job["result"]["signature"] == report_signature(reference) for job in jobs
        )
        print(f"responses byte-identical to the batch report: {matches}/{requests}")
        print(f"f1 via service: {jobs[0]['result']['metrics']['f1']:.3f}")

        print("\nStreaming deltas into a warm shard ...")
        job = client.deltas(
            [
                {
                    "op": "insert",
                    "values": {"HN": "H1", "CT": "DOTH", "ST": "AL", "PN": "2567688400"},
                },
                {
                    "op": "insert",
                    "values": {"HN": "H1", "CT": "DOTHAN", "ST": "AL", "PN": "2567688400"},
                },
            ],
            workload="hospital-sample",
        )
        result = job["result"]
        print(
            f"tick {result['tick']}: applied {result['applied']}, "
            f"{result['tuples_total']} tuples retained"
        )
        job = client.deltas(
            [{"op": "update", "tid": 0, "changes": {"CT": "DOTHAN"}}],
            workload="hospital-sample",
        )
        print(f"late correction applied in tick {job['result']['tick']}")

        stats = client.stats()
        print("\n/stats snapshot:")
        print(f"  jobs: {stats['jobs']}")
        print(f"  latency: p50={stats['latency']['p50_s']}s p95={stats['latency']['p95_s']}s")
        for shard in stats["shards"]:
            print(
                f"  shard {shard['shard']}: jobs_done={shard['jobs_done']} "
                f"ticks={shard['ticks']} reuses={shard['session_reuses']}"
            )
        print(f"  distance cache hit rate: {stats['distance']['hit_rate']}")


if __name__ == "__main__":
    main()
