"""Streaming: clean a continuously arriving workload in micro-batches.

A :class:`repro.CleaningSession` on the "streaming" backend replays a
corrupted HAI workload as insert micro-batches through the incremental
engine — maintaining the MLN index per delta, re-running Stage I only on
the blocks each batch dirtied and Stage II only for the tuples whose fusion
inputs changed.  The engine stays alive on the backend after the run, so a
late batch of corrections is applied incrementally too.  Finally the
streamed result is checked against the same session re-run on the "batch"
backend: the two cleaned tables are identical.

Run with::

    python examples/streaming_clean.py [tuples] [batch_size]
"""

import sys

from repro import CleaningSession, DeltaBatch, Update, WorkloadStreamSource
from repro.errors.injector import ErrorSpec


def main() -> None:
    tuples = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    batch_size = int(sys.argv[2]) if len(sys.argv) > 2 else max(1, tuples // 4)

    source = WorkloadStreamSource(
        "hai",
        tuples=tuples,
        batch_size=batch_size,
        error_spec=ErrorSpec(error_rate=0.05),
    )
    session = (
        CleaningSession.builder()
        .with_rules(source.rules)
        .for_workload("hai")
        .with_backend("streaming", batch_size=batch_size)
        .with_table(source.dirty)
        .with_ground_truth(source.ground_truth)
        .build()
    )

    print(f"Streaming {tuples} HAI tuples in micro-batches of {batch_size}:")
    report = session.run()
    engine = session.backend.engine
    print(f"  batches applied: {engine.batches_applied}")
    print("  " + report.describe().replace("\n", "\n  "))
    print()

    tid = engine.dirty.tids[0]
    correction = DeltaBatch([Update(tid, {"MeasureName": "CLABSI-REVISED"})])
    print(f"Applying a late correction to tuple {tid}:")
    print("  " + engine.apply_batch(correction).describe())
    print()

    batch_session = CleaningSession(
        rules=session.rules, config=session.config, backend="batch"
    )
    reference = batch_session.run(engine.dirty.copy())
    same = engine.cleaned.equals(reference.cleaned)
    print(f"Streamed result matches batch MLNClean: {same}")
    accuracy = engine.accuracy()
    if accuracy is not None:
        print(
            f"Cumulative repair accuracy: precision={accuracy.precision:.3f} "
            f"recall={accuracy.recall:.3f} f1={accuracy.f1:.3f}"
        )
    print(f"Tuples retained after duplicate elimination: {len(engine.cleaned)}")


if __name__ == "__main__":
    main()
