"""Streaming: clean a continuously arriving workload in micro-batches.

A :class:`~repro.streaming.source.WorkloadStreamSource` replays a corrupted
HAI workload as insert micro-batches; :class:`~repro.streaming.cleaner.StreamingMLNClean`
applies each batch incrementally — maintaining the MLN index per delta,
re-running Stage I only on the blocks the batch dirtied and Stage II only
for the tuples whose fusion inputs changed.  After the stream drains, a
batch of localized corrections arrives, and finally the streamed result is
checked against a from-scratch batch MLNClean run over the same table: the
two cleaned tables are identical.

Run with::

    python examples/streaming_clean.py [tuples] [batch_size]
"""

import sys

from repro import MLNClean, MLNCleanConfig, StreamingMLNClean
from repro.errors.injector import ErrorSpec
from repro.streaming import DeltaBatch, Update, WorkloadStreamSource


def main() -> None:
    tuples = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    batch_size = int(sys.argv[2]) if len(sys.argv) > 2 else max(1, tuples // 4)

    source = WorkloadStreamSource(
        "hai",
        tuples=tuples,
        batch_size=batch_size,
        error_spec=ErrorSpec(error_rate=0.05),
    )
    config = MLNCleanConfig.for_dataset("hai")
    engine = StreamingMLNClean(source.rules, source.schema, config=config)

    print(f"Streaming {tuples} HAI tuples in micro-batches of {batch_size}:")
    for report in engine.consume(source):
        print("  " + report.describe())
    print()

    tid = engine.dirty.tids[0]
    correction = DeltaBatch([Update(tid, {"MeasureName": "CLABSI-REVISED"})])
    print(f"Applying a late correction to tuple {tid}:")
    print("  " + engine.apply_batch(correction).describe())
    print()

    reference = MLNClean(config).clean(engine.dirty.copy(), source.rules)
    same = engine.cleaned.equals(reference.cleaned)
    print(f"Streamed result matches batch MLNClean: {same}")
    accuracy = engine.accuracy()
    if accuracy is not None:
        print(
            f"Cumulative repair accuracy: precision={accuracy.precision:.3f} "
            f"recall={accuracy.recall:.3f} f1={accuracy.f1:.3f}"
        )
    print(f"Tuples retained after duplicate elimination: {len(engine.cleaned)}")


if __name__ == "__main__":
    main()
