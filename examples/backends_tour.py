"""One workload, three execution backends, one unified report.

The point of the session API: the *same* rules/config/table drive the
stand-alone batch pipeline, the partitioned (simulated-cluster) driver, and
the incremental streaming engine — only the ``with_backend(...)`` call
changes, and every run comes back as the same
:class:`~repro.core.report.CleaningReport` shape.

Run with::

    python examples/backends_tour.py [tuples]
"""

import sys

from repro import CleaningSession
from repro.errors import ErrorSpec
from repro.workloads import get_workload_generator

BACKENDS = (
    ("batch", {}),
    ("distributed", {"workers": 2}),
    ("streaming", {"batch_size": 10}),
)


def main(tuples: int = 48) -> None:
    workload = get_workload_generator("hospital-sample", tuples=tuples).build()
    instance = workload.make_instance(ErrorSpec(error_rate=0.05, seed=42))
    print(
        f"hospital-sample workload: {tuples} tuples, "
        f"{instance.injected_errors} injected errors\n"
    )

    header = f"{'backend':>12}  {'tuples_out':>10}  {'f1':>6}  {'runtime_s':>9}"
    print(header)
    print("-" * len(header))
    cleaned = {}
    for backend, options in BACKENDS:
        session = (
            CleaningSession.builder()
            .with_rules(instance.rules)
            .for_workload("hospital-sample")
            .with_backend(backend, **options)
            .with_table(instance.dirty.copy())
            .with_ground_truth(instance.ground_truth)
            .build()
        )
        report = session.run()
        cleaned[backend] = report.cleaned
        print(
            f"{backend:>12}  {len(report.cleaned):>10}  "
            f"{report.f1:>6.3f}  {report.runtime:>9.4f}"
        )

    print()
    print(f"batch == streaming: {cleaned['batch'].equals(cleaned['streaming'])}")
    print(f"batch == distributed: {cleaned['batch'].equals(cleaned['distributed'])}")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    main(size)
