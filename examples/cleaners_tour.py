"""One workload, four cleaning algorithms, one unified report.

The point of the cleaner protocol: MLNClean and every comparison baseline
answer the *same* :class:`~repro.session.backends.CleaningRequest` with the
*same* :class:`~repro.core.report.CleaningReport` — selecting the algorithm
is one ``with_cleaner(...)`` call, exactly like selecting MLNClean's
execution backend is one ``with_backend(...)`` call.

The second half runs the same comparison declaratively: an inline
:class:`~repro.experiments.ExperimentSpec` through the
:class:`~repro.experiments.ExperimentRunner`, whose
:class:`~repro.experiments.RunArtifact` survives a JSON round-trip with the
numbers (and even the cleaned tables) intact.

Run with::

    python examples/cleaners_tour.py [tuples]
"""

import sys

from repro import CleaningSession, available_cleaners
from repro.errors import ErrorSpec
from repro.experiments import (
    CleanerSpec,
    ExperimentRunner,
    ExperimentSpec,
    RunArtifact,
)
from repro.workloads import get_workload_generator

CLEANERS = ("mlnclean", "holoclean", "minimal-repair", "factor-graph")


def main(tuples: int = 60) -> None:
    workload = get_workload_generator("hospital-sample", tuples=tuples).build()
    instance = workload.make_instance(ErrorSpec(error_rate=0.08, seed=42))
    print(f"registered cleaners: {', '.join(available_cleaners())}")
    print(
        f"hospital-sample workload: {tuples} tuples, "
        f"{instance.injected_errors} injected errors\n"
    )

    header = f"{'cleaner':>15}  {'tuples_out':>10}  {'f1':>6}  {'runtime_s':>9}"
    print(header)
    print("-" * len(header))
    for name in CLEANERS:
        session = (
            CleaningSession.builder()
            .with_rules(instance.rules)
            .for_workload("hospital-sample")
            .with_cleaner(name)
            .with_table(instance.dirty.copy())
            .with_ground_truth(instance.ground_truth)
            .build()
        )
        report = session.run()
        print(
            f"{name:>15}  {len(report.cleaned):>10}  "
            f"{report.f1:>6.3f}  {report.runtime:>9.4f}"
        )

    # the same comparison as data: a spec, a runner, a serializable artifact
    spec = ExperimentSpec(
        name="cleaners-tour",
        description="all built-in cleaners on hospital-sample",
        workloads=["hospital-sample"],
        cleaners=[CleanerSpec(cleaner=name) for name in CLEANERS],
        error_rates=[0.08],
        tuples=tuples,
    )
    artifact = ExperimentRunner(spec).run()
    reloaded = RunArtifact.from_json(artifact.to_json())
    print("\ndeclarative re-run (spec -> runner -> artifact -> JSON -> artifact):")
    for cell in reloaded.cells:
        print(
            f"{cell.metrics['system']:>15}  f1={cell.metrics['f1']:<6}  "
            f"cleaned tuples={len(cell.report.cleaned)}"
        )
    print(
        "artifact JSON round-trip bit-identical: "
        f"{reloaded.to_json() == artifact.to_json()}"
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    main(size)
