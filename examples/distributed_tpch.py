"""Distributed MLNClean on the TPC-H workload (Section 6 / Table 6).

Runs a :class:`repro.CleaningSession` on the "distributed" backend:
partitions a synthetic TPC-H join with Algorithm 3, cleans each partition on
a simulated worker, fuses the per-partition Markov weights with Eq. 6, and
resolves conflicts globally — then repeats with different worker counts to
show the runtime/accuracy trade-off the paper reports in Table 6.  The
distributed drill-down (partition sizes, speedup) stays reachable through
``report.details``.

Run with::

    python examples/distributed_tpch.py [tuples]
"""

import sys

from repro import CleaningSession
from repro.errors import ErrorSpec
from repro.workloads import TPCHWorkloadGenerator


def main(tuples: int = 3000) -> None:
    print(f"Generating a TPC-H workload with {tuples} tuples ...")
    workload = TPCHWorkloadGenerator(tuples=tuples).build()
    instance = workload.make_instance(ErrorSpec(error_rate=0.05))
    print(f"Injected {instance.injected_errors} errors\n")

    header = f"{'workers':>7}  {'parallel_s':>10}  {'sequential_s':>12}  {'speedup':>7}  {'F1':>6}"
    print(header)
    print("-" * len(header))
    for workers in (2, 4, 8):
        session = (
            CleaningSession.builder()
            .with_rules(instance.rules)
            .for_workload("tpch")
            .with_backend("distributed", workers=workers)
            .with_table(instance.dirty)
            .with_ground_truth(instance.ground_truth)
            .build()
        )
        report = session.run()
        details = report.details
        print(
            f"{workers:>7}  {details.runtime:>10.2f}  {details.sequential_runtime:>12.2f}  "
            f"{details.speedup:>7.2f}  {report.f1:>6.3f}"
        )
        sizes = details.partition.sizes
        print(f"         partition sizes: {sizes}")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    main(size)
