"""The error-detection front end, from registry to scoped cleaning.

Four stops:

1. the detector registry and a few stacks scored against the injected-error
   ledger of a seeded hospital-sample instance,
2. HoloClean-format denial-constraint ingestion — the packaged
   ``hospital_sample.dc`` file drives a pinned violation detector,
3. the *exact-or-prune* contract: an ``all-cells`` stack is byte-identical
   to running with no detection at all,
4. dirty-cell-scoped cleaning: a violation stack prunes Stage I/II, cutting
   raw distance evaluations while repairing the detected cells exactly like
   the full pipeline.

Run with::

    python examples/detectors_tour.py [tuples]

(The same front end is scriptable as ``python -m repro.detect``.)
"""

import sys

from repro.detect import available_detectors, data_path, load_dc_file, run_detection
from repro.experiments.harness import prepare_instance
from repro.perf import global_distance_stats
from repro.service.codec import report_signature
from repro.session import CleaningSession
from repro.workloads.registry import recommended_config

STACKS = [
    ["null", "outlier"],
    ["violation"],
    [{"name": "violation", "options": {"dc_file": "hospital_sample.dc"}}],
    ["perfect"],
]


def run_session(instance, detectors):
    session = CleaningSession(
        rules=instance.rules,
        config=recommended_config("hospital-sample"),
        table=instance.dirty,
        ground_truth=instance.ground_truth,
        detectors=detectors,
    )
    before = global_distance_stats()
    report = session.run()
    return report, global_distance_stats().diff(before)


def main(tuples: int = 120) -> None:
    print(f"registered detectors: {', '.join(available_detectors())}")
    instance = prepare_instance(
        "hospital-sample", tuples=tuples, error_rate=0.1, seed=7, error_seed=42
    )
    truth = instance.ground_truth.dirty_cells
    print(
        f"hospital-sample workload: {tuples} tuples, "
        f"{len(truth)} truly dirty cells\n"
    )

    header = f"{'stack':>42}  {'cells':>5}  {'prec':>6}  {'recall':>6}  {'f1':>6}"
    print(header)
    print("-" * len(header))
    for stack in STACKS:
        detected = run_detection(
            instance.dirty, instance.rules, stack, ground_truth=instance.ground_truth
        )
        acc = detected.accuracy(truth, instance.dirty)
        label = "+".join(
            spec if isinstance(spec, str) else f"{spec['name']}(dc_file)"
            for spec in stack
        )
        print(
            f"{label:>42}  {detected.count:>5}  {acc['precision']:>6.3f}  "
            f"{acc['recall']:>6.3f}  {acc['f1']:>6.3f}"
        )

    dc_path = data_path("hospital_sample.dc")
    rules = load_dc_file(dc_path)
    print(f"\npackaged DC file {dc_path.name}: {len(rules)} denial constraints")
    for rule in rules:
        print(f"  {rule.describe()}")

    plain, _ = run_session(instance, None)
    everything, _ = run_session(instance, ["all-cells"])
    print(
        "\nall-cells detection byte-identical to no detection: "
        f"{report_signature(plain) == report_signature(everything)}"
    )

    scoped, scoped_stats = run_session(instance, ["violation"])
    _, full_stats = run_session(instance, None)
    detected = scoped.details.detection
    print(
        f"violation-scoped run: {detected['count']} detected cells, "
        f"{len(detected['scoped_blocks'])} blocks in scope"
    )
    print(
        f"raw distance evaluations: full={full_stats.raw_evaluations} "
        f"scoped={scoped_stats.raw_evaluations} "
        f"(x{full_stats.raw_evaluations / max(1, scoped_stats.raw_evaluations):.1f} fewer)"
    )
    print(f"scoped f1={scoped.f1:.3f} vs full f1={plain.f1:.3f}")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    main(size)
