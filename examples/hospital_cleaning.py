"""Clean a synthetic HAI (hospital infections) workload and compare systems.

This example mirrors the paper's main comparison (Figure 6) on one
configuration: a HAI-like table with the seven Table-4 constraints, 5 %
injected errors (half typos, half replacement errors), cleaned through a
:class:`repro.CleaningSession` (batch backend) and by the HoloClean-style
baseline with perfect error detection.

Run with::

    python examples/hospital_cleaning.py [tuples]
"""

import sys

from repro import CleaningSession
from repro.baselines import HoloCleanBaseline
from repro.errors import ErrorSpec
from repro.workloads import HAIWorkloadGenerator


def main(tuples: int = 2000) -> None:
    print(f"Generating a clean HAI workload with {tuples} tuples ...")
    workload = HAIWorkloadGenerator(tuples=tuples).build()
    print("Rules:")
    for rule in workload.rules:
        print(f"  {rule.name} ({rule.kind}): {rule}")

    instance = workload.make_instance(ErrorSpec(error_rate=0.05, replacement_ratio=0.5))
    print(
        f"Injected {instance.injected_errors} errors "
        f"({instance.error_rate:.1%} of all attribute values)\n"
    )

    session = (
        CleaningSession.builder()
        .with_rules(instance.rules)
        .for_workload("hai")
        .with_backend("batch")
        .with_table(instance.dirty)
        .with_ground_truth(instance.ground_truth)
        .build()
    )
    print(f"Running MLNClean (tau={session.config.abnormal_threshold}) ...")
    report = session.run()
    print(report.describe())
    print()

    print("Running the HoloClean baseline (perfect detection) ...")
    baseline = HoloCleanBaseline().clean(
        instance.dirty, instance.rules, instance.ground_truth
    )
    assert baseline.accuracy is not None
    print(
        f"HoloClean: precision={baseline.accuracy.precision:.3f} "
        f"recall={baseline.accuracy.recall:.3f} f1={baseline.accuracy.f1:.3f} "
        f"runtime={baseline.runtime:.2f}s"
    )
    print()
    winner = "MLNClean" if report.f1 >= baseline.f1 else "HoloClean"
    print(f"Higher F1 on this run: {winner}")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    main(size)
