"""Sensitivity to the error-type mix on the sparse CAR workload (Figure 7).

The paper's key qualitative finding on CAR is that HoloClean is sensitive to
the error-type ratio (it struggles when all errors are typos, because typos
never appear among the clean values it trains on), while MLNClean handles
typos well thanks to the distance-based AGP/RSC stages.  This example sweeps
the replacement-error ratio Rret from 0 (all typos) to 1 (all replacements)
and prints both systems' F1.

Run with::

    python examples/car_error_types.py [tuples]
"""

import sys

from repro.experiments import fig07_error_type_ratio


def main(tuples: int = 1500) -> None:
    result = fig07_error_type_ratio(
        datasets=("car",),
        ratios=(0.0, 0.25, 0.5, 0.75, 1.0),
        tuples=tuples,
    )
    print(result.render())
    print()
    mlnclean_at_typos = [
        row["f1"]
        for row in result.rows
        if row["system"] == "MLNClean" and row["replacement_ratio"] == 0.0
    ][0]
    holoclean_at_typos = [
        row["f1"]
        for row in result.rows
        if row["system"] == "HoloClean" and row["replacement_ratio"] == 0.0
    ][0]
    print(
        "All-typo setting (Rret = 0): "
        f"MLNClean F1 = {mlnclean_at_typos}, HoloClean F1 = {holoclean_at_typos}"
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    main(size)
