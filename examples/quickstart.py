"""Quickstart: clean the paper's six-tuple hospital sample with a session.

This walks through the exact running example of the paper (Table 1 and the
rules r1-r3 of Example 1) using the unified :class:`repro.CleaningSession`
API: the typo ``DOTH``, the replacement errors of tuple t3, the wrong state
of t4 and the duplicates t1/t2 and t3..t6 are all cleaned by the two-stage
pipeline behind the session's default "batch" backend.

Run with::

    python examples/quickstart.py
"""

from repro import CleaningSession
from repro.dataset.sample import sample_hospital_rules, sample_hospital_table


def main() -> None:
    session = (
        CleaningSession.builder()
        .with_rules(sample_hospital_rules())
        .with_config(abnormal_threshold=1)
        .with_backend("batch")
        .build()
    )
    dirty = session.load_table(sample_hospital_table())

    print(session.describe())
    print()
    print("Integrity constraints:")
    for rule in session.rules:
        print(f"  {rule.name} ({rule.kind}): {rule}")
    print()
    print("Dirty input (Table 1 of the paper):")
    print(dirty.to_pretty_string())
    print()

    report = session.run()

    print("Repaired table (before duplicate elimination):")
    print(report.repaired.to_pretty_string())
    print()
    print("Final clean table (duplicates removed):")
    print(report.cleaned.to_pretty_string())
    print()
    print(report.describe())


if __name__ == "__main__":
    main()
