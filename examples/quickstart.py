"""Quickstart: clean the paper's six-tuple hospital sample with MLNClean.

This walks through the exact running example of the paper (Table 1 and the
rules r1-r3 of Example 1): the typo ``DOTH``, the replacement errors of tuple
t3, the wrong state of t4 and the duplicates t1/t2 and t3..t6 are all cleaned
by the two-stage pipeline.

Run with::

    python examples/quickstart.py
"""

from repro import MLNClean, MLNCleanConfig
from repro.dataset.sample import sample_hospital_rules, sample_hospital_table


def main() -> None:
    dirty = sample_hospital_table()
    rules = sample_hospital_rules()

    print("Integrity constraints:")
    for rule in rules:
        print(f"  {rule.name} ({rule.kind}): {rule}")
    print()
    print("Dirty input (Table 1 of the paper):")
    print(dirty.to_pretty_string())
    print()

    cleaner = MLNClean(MLNCleanConfig(abnormal_threshold=1))
    report = cleaner.clean(dirty, rules)

    print("Repaired table (before duplicate elimination):")
    print(report.repaired.to_pretty_string())
    print()
    print("Final clean table (duplicates removed):")
    print(report.cleaned.to_pretty_string())
    print()
    print(report.describe())


if __name__ == "__main__":
    main()
