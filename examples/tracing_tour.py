"""A tour of the observability layer: spans, trees, metrics, exports.

Cleans one workload three ways with tracing enabled and shows everything
:mod:`repro.obs` records along the way:

* the human span tree of a batch run (session → backend → pipeline →
  stages), straight from ``session.last_trace``;
* the proof that tracing is output-invariant — the masked report
  signature is byte-identical with tracing on or off;
* a Chrome ``trace_event`` export ready for ``chrome://tracing`` or
  https://ui.perfetto.dev;
* the process-default metrics registry rendered as Prometheus text (the
  same body the service serves on ``GET /metrics``).

Run with::

    python examples/tracing_tour.py [tuples] [trace.json]
"""

import json
import sys
from dataclasses import replace

from repro import CleaningSession
from repro.errors import ErrorSpec
from repro.obs import get_registry, name_tree, render_tree, to_chrome
from repro.service import report_signature
from repro.workloads import get_workload_generator, recommended_config


def run(instance, trace: bool):
    config = replace(recommended_config("hospital-sample"), trace=trace)
    session = (
        CleaningSession.builder()
        .with_rules(instance.rules)
        .with_config(config)
        .with_backend("batch")
        .with_table(instance.dirty.copy())
        .with_ground_truth(instance.ground_truth)
        .build()
    )
    return session, session.run()


def main(tuples: int = 48, trace_out: str = "") -> None:
    workload = get_workload_generator("hospital-sample", tuples=tuples).build()
    instance = workload.make_instance(ErrorSpec(error_rate=0.1, seed=42))
    print(f"hospital-sample workload: {tuples} tuples\n")

    # 1. a traced run: one connected span tree per session.run
    traced_session, traced_report = run(instance, trace=True)
    spans = traced_session.last_trace.finished()
    print(f"span tree of the batch run ({len(spans)} spans):")
    print(render_tree(spans))
    print(f"connected trees: {len(name_tree(spans))}")

    # 2. tracing changes no output byte: same masked signature as untraced
    _, untraced_report = run(instance, trace=False)
    identical = report_signature(traced_report) == report_signature(untraced_report)
    print(f"\nmasked report signature identical with tracing off: {identical}")

    # 3. the Chrome trace_event export (open in chrome://tracing / Perfetto)
    chrome = to_chrome(spans)
    print(f"chrome trace: {len(chrome['traceEvents'])} complete events")
    if trace_out:
        with open(trace_out, "w", encoding="utf-8") as handle:
            json.dump(chrome, handle)
        print(f"trace written to {trace_out}")

    # 4. the metrics the run left in the process-default registry
    text = get_registry().render_prometheus()
    stage_lines = [
        line for line in text.splitlines()
        if line.startswith("repro_stage_seconds_total")
    ]
    print("\nper-stage wall-clock counters (Prometheus text):")
    for line in stage_lines:
        print(f"  {line}")
    hit_rate = [
        line for line in text.splitlines()
        if line.startswith("repro_distance_cache_hit_rate")
    ]
    print(f"distance cache hit rate: {hit_rate[0].split()[-1]}")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    out = sys.argv[2] if len(sys.argv) > 2 else ""
    main(size, out)
